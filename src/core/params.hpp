/**
 * @file
 * Configuration of the Phastlane optical network (paper Table 1 plus
 * the knobs exercised in the evaluation and ablations).
 */

#ifndef PHASTLANE_CORE_PARAMS_HPP
#define PHASTLANE_CORE_PARAMS_HPP

#include <algorithm>
#include <cstdint>

namespace phastlane::core {

/**
 * Intra-cycle contention-resolution model for the optical wavefront
 * (DESIGN.md 3.1).
 */
enum class WavefrontModel : uint8_t {
    /** Port claims are final once granted; priority applies among
     *  packets reaching a router in the same sub-step. Default. */
    SubstepFcfs,
    /** Idealized straight priority: a straight packet evicts a
     *  turning packet's claim regardless of arrival order, resolved
     *  by monotone fixed point (ablation). */
    GlobalPriority,
};

/**
 * Launch arbitration over a router's buffered packets (the paper's
 * future work mentions alternatives to the simple rotating scheme).
 */
enum class BufferArbitration : uint8_t {
    /** Rotating pointer over the five queues. Default (paper). */
    RotatingPriority,
    /** Globally oldest eligible packet first (extension). */
    OldestFirst,
};

/** Arbitration among same-sub-step optical arrivals (footnote 3). */
enum class OpticalArbitration : uint8_t {
    /** Straight beats turns, ties by fixed port order. Default. */
    FixedPriority,
    /** Rotating priority over input ports (ablation; the paper found
     *  no performance advantage). */
    RoundRobin,
};

/**
 * Phastlane network parameters. Defaults follow Table 1 and the
 * baseline "Optical4" configuration of Section 5.
 */
struct PhastlaneParams {
    int meshWidth = 8;
    int meshHeight = 8;

    /** Hops traversable per cycle: 4 (pessimistic), 5 (average) or 8
     *  (optimistic scaling). */
    int maxHopsPerCycle = 4;

    /**
     * Entries in each router buffer queue (four input ports plus the
     * local node queue). 10 for Optical4, 32/64 for Optical4B32/B64;
     * <= 0 means infinite (Optical4IB).
     */
    int routerBufferEntries = 10;

    /** Entries in the network-interface controller queue (Table 1). */
    int nicQueueEntries = 50;

    /** Packets movable from the NIC into the router's local queue per
     *  cycle (sized to keep a broadcast's branch fan-out fed). */
    int nicTransfersPerCycle = 4;

    /** Payload WDM degree (Table 1: 64). */
    int wavelengths = 64;

    /**
     * Buffered-packet launches per queue per cycle. The rotating
     * arbiter picks up to four packets total (one per output port);
     * allowing several from one queue matters mainly for the local
     * queue when a broadcast's branches fan out to all four ports.
     */
    int launchesPerQueue = 4;

    /**
     * Extra cycles a dropped packet waits before becoming eligible
     * again, on top of the mandatory drop-signal round trip.
     */
    int backoffBase = 0;

    /** Exponential backoff on repeated drops of the same packet. */
    bool exponentialBackoff = false;

    /** Cap on the exponential backoff window (cycles). */
    int backoffCap = 64;

    WavefrontModel wavefront = WavefrontModel::SubstepFcfs;
    OpticalArbitration opticalArbitration =
        OpticalArbitration::FixedPriority;
    BufferArbitration bufferArbitration =
        BufferArbitration::RotatingPriority;

    /**
     * Extension (paper future work, Section 5): DAMQ-style buffer
     * sharing. Each queue keeps a guaranteed half of its partition;
     * the other half of every partition forms a shared per-router
     * pool any queue may borrow from, absorbing single-port hotspots.
     * (Fully shared pools were tried first and congestion-collapse
     * under drop-retry storms; see bench/futurework_buffers.)
     */
    bool sharedBufferPool = false;

    /** Seed for backoff jitter. */
    uint64_t seed = 1;

    /**
     * Deliberate semantic mutations used ONLY to validate that the
     * src/check/ verification subsystem actually catches bugs (a
     * checker that never fires is untested). Never enable outside
     * checker-validation tests.
     */
    struct FaultInjection {
        /** Invert the straight-over-turn optical priority (paper
         *  Section 2.2): turning packets win contended ports. */
        bool invertStraightPriority = false;
    };
    FaultInjection faults;

    bool infiniteBuffers() const { return routerBufferEntries <= 0; }
    int nodeCount() const { return meshWidth * meshHeight; }
};

/**
 * Exponential-backoff jitter window after @p attempts completed
 * (dropped) launch attempts: min(2^attempts - 1, backoffCap), in
 * cycles. The single source of truth for both PhastlaneNetwork and
 * the ReferenceNetwork oracle, which must stay in exact lockstep
 * (including whether a jitter value is drawn at all: the RNG is
 * consulted only when the window is positive).
 *
 * The shift amount is clamped only to keep 2^attempts representable;
 * the effective cap is backoffCap itself. (An earlier version clamped
 * the exponent at 6 *before* applying the cap, so backoffCap > 63
 * silently never widened the window beyond 63 cycles.)
 */
inline int64_t
backoffWindow(const PhastlaneParams &params, int attempts)
{
    if (!params.exponentialBackoff || attempts <= 0 ||
        params.backoffCap <= 0) {
        return 0;
    }
    const int exp = attempts < 62 ? attempts : 62;
    return std::min<int64_t>((int64_t{1} << exp) - 1,
                             static_cast<int64_t>(params.backoffCap));
}

} // namespace phastlane::core

#endif // PHASTLANE_CORE_PARAMS_HPP
