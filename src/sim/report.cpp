#include "sim/report.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"
#include "core/network.hpp"
#include "electrical/network.hpp"

namespace phastlane::sim {

UtilizationReport::UtilizationReport(
    const MeshTopology &mesh, const std::vector<uint64_t> &counts,
    Cycle cycles)
    : mesh_(mesh)
{
    if (cycles == 0)
        fatal("utilization report over zero cycles");
    PL_ASSERT(counts.size() == static_cast<size_t>(mesh.nodeCount()) *
                                   kMeshPorts,
              "counter vector does not match the mesh");
    for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
        for (Port p : kMeshDirections) {
            if (mesh.neighbor(n, p) == kInvalidNode)
                continue; // no physical link at the mesh edge
            LinkUtilization lu;
            lu.router = n;
            lu.out = p;
            lu.traversals =
                counts[static_cast<size_t>(n) * kMeshPorts +
                       portIndex(p)];
            lu.utilization = static_cast<double>(lu.traversals) /
                             static_cast<double>(cycles);
            links_.push_back(lu);
        }
    }
}

UtilizationReport
UtilizationReport::fromNetwork(const Network &net, Cycle cycles)
{
    if (const auto *pl =
            dynamic_cast<const core::PhastlaneNetwork *>(&net)) {
        return UtilizationReport(pl->mesh(), pl->portClaimCounts(),
                                 cycles);
    }
    if (const auto *el =
            dynamic_cast<const electrical::ElectricalNetwork *>(
                &net)) {
        return UtilizationReport(el->mesh(), el->linkCounts(),
                                 cycles);
    }
    fatal("unknown network type for utilization reporting");
}

double
UtilizationReport::meanUtilization() const
{
    if (links_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &l : links_)
        sum += l.utilization;
    return sum / static_cast<double>(links_.size());
}

double
UtilizationReport::peakUtilization() const
{
    double peak = 0.0;
    for (const auto &l : links_)
        peak = std::max(peak, l.utilization);
    return peak;
}

std::vector<LinkUtilization>
UtilizationReport::hottest(size_t n) const
{
    std::vector<LinkUtilization> sorted = links_;
    std::sort(sorted.begin(), sorted.end(),
              [](const LinkUtilization &a, const LinkUtilization &b) {
                  return a.utilization > b.utilization;
              });
    if (sorted.size() > n)
        sorted.resize(n);
    return sorted;
}

std::string
UtilizationReport::heatmap() const
{
    // Mean outgoing utilization per router.
    std::vector<double> router_util(
        static_cast<size_t>(mesh_.nodeCount()), 0.0);
    std::vector<int> router_links(
        static_cast<size_t>(mesh_.nodeCount()), 0);
    for (const auto &l : links_) {
        router_util[static_cast<size_t>(l.router)] += l.utilization;
        ++router_links[static_cast<size_t>(l.router)];
    }
    std::string out;
    // North-up: highest row first.
    for (int y = mesh_.height() - 1; y >= 0; --y) {
        for (int x = 0; x < mesh_.width(); ++x) {
            const NodeId n = mesh_.nodeAt({x, y});
            const double u =
                router_links[static_cast<size_t>(n)] > 0
                    ? router_util[static_cast<size_t>(n)] /
                          router_links[static_cast<size_t>(n)]
                    : 0.0;
            char c = '.';
            if (u > 0.005) {
                const int digit = std::min(
                    9, static_cast<int>(u * 10.0));
                c = static_cast<char>('0' + digit);
            }
            out += c;
            out += ' ';
        }
        out += '\n';
    }
    return out;
}

} // namespace phastlane::sim
