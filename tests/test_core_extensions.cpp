/**
 * @file
 * Tests of the future-work extensions (paper Section 5/7): the shared
 * per-router buffer pool and oldest-first buffer arbitration.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "core/router.hpp"

namespace phastlane::core {
namespace {

OpticalPacket
mkPacket(uint64_t branch, NodeId dst)
{
    OpticalPacket pkt;
    pkt.base.id = branch;
    pkt.branchId = branch;
    pkt.finalDst = dst;
    return pkt;
}

TEST(SharedPool, QueueBorrowsFromTheSharedHalf)
{
    PhastlaneParams p;
    p.routerBufferEntries = 4; // guaranteed 2 + shared 5 x 2 = 10
    p.sharedBufferPool = true;
    RouterBuffers rb(0, p);
    // Per-port partitioning would stop at 4; with DAMQ sharing one
    // queue can hold its guaranteed 2 plus the whole 10-slot shared
    // region.
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(rb.hasSpace(Port::North)) << i;
        rb.push(Port::North, mkPacket(static_cast<uint64_t>(i + 1), 5),
                0);
    }
    EXPECT_FALSE(rb.hasSpace(Port::North));
    EXPECT_EQ(rb.freeSlots(Port::North), 0);
}

TEST(SharedPool, GuaranteedSlotsSurviveAHog)
{
    PhastlaneParams p;
    p.routerBufferEntries = 4;
    p.sharedBufferPool = true;
    RouterBuffers rb(0, p);
    // North hogs its guarantee plus the entire shared region...
    for (int i = 0; i < 12; ++i)
        rb.push(Port::North, mkPacket(static_cast<uint64_t>(i + 1), 5),
                0);
    // ...yet every other queue still has its guaranteed two slots.
    for (Port q : {Port::East, Port::South, Port::West, Port::Local}) {
        EXPECT_EQ(rb.freeSlots(q), 2) << portName(q);
        rb.push(q, mkPacket(static_cast<uint64_t>(100 + portIndex(q)),
                            5), 0);
        rb.push(q, mkPacket(static_cast<uint64_t>(200 + portIndex(q)),
                            5), 0);
        EXPECT_FALSE(rb.hasSpace(q)) << portName(q);
    }
}

TEST(SharedPool, PartitionedModeIsPerPort)
{
    PhastlaneParams p;
    p.routerBufferEntries = 2;
    p.sharedBufferPool = false;
    RouterBuffers rb(0, p);
    rb.push(Port::North, mkPacket(1, 5), 0);
    rb.push(Port::North, mkPacket(2, 5), 0);
    EXPECT_FALSE(rb.hasSpace(Port::North));
    EXPECT_TRUE(rb.hasSpace(Port::South));
}

TEST(SharedPool, NetworkDeliversUnderPressure)
{
    PhastlaneParams p;
    p.routerBufferEntries = 2;
    p.sharedBufferPool = true;
    PhastlaneNetwork net(p);
    PacketId id = 1;
    for (NodeId src = 0; src < 64; src += 4) {
        Packet b;
        b.id = id++;
        b.src = src;
        b.broadcast = true;
        ASSERT_TRUE(net.inject(b));
    }
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 100000)
        net.step();
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(net.counters().deliveries, 16u * 63u);
}

TEST(SharedPool, FewerDropsThanPartitionedUnderHotspot)
{
    // Hotspot traffic concentrates on one input port; the shared pool
    // absorbs it where the partition overflows.
    auto drops = [](bool shared) {
        PhastlaneParams p;
        p.routerBufferEntries = 2;
        p.sharedBufferPool = shared;
        PhastlaneNetwork net(p);
        PacketId id = 1;
        // Many packets crossing the central column northward.
        for (int round = 0; round < 8; ++round) {
            for (NodeId src = 0; src < 8; ++src) {
                Packet pkt;
                pkt.id = id++;
                pkt.src = src;          // bottom row
                pkt.dst = 56 + 3;       // (3,7)
                if (pkt.src == pkt.dst)
                    continue;
                net.inject(pkt);
            }
            net.step();
        }
        int guard = 0;
        while (net.inFlight() > 0 && guard++ < 100000)
            net.step();
        return net.phastlaneCounters().drops;
    };
    EXPECT_LE(drops(true), drops(false));
}

TEST(OldestFirst, PicksStrictlyByAge)
{
    PhastlaneParams p;
    p.routerBufferEntries = 4;
    p.bufferArbitration = BufferArbitration::OldestFirst;
    RouterBuffers rb(0, p);
    // Later queue (West) receives the older packet.
    rb.push(Port::West, mkPacket(1, 5), 0);
    rb.push(Port::North, mkPacket(2, 5), 0);
    // Both want the same output port: the oldest (seq 0) must win
    // regardless of queue order.
    auto launches = rb.arbitrate(0, [](const OpticalPacket &) {
        return Port::East;
    });
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].first->pkt.branchId, 1u);
}

TEST(OldestFirst, StillLaunchesUpToFourPorts)
{
    PhastlaneParams p;
    p.routerBufferEntries = 8;
    p.bufferArbitration = BufferArbitration::OldestFirst;
    RouterBuffers rb(0, p);
    const Port outs[4] = {Port::North, Port::East, Port::South,
                          Port::West};
    for (int i = 0; i < 6; ++i) {
        OpticalPacket pk = mkPacket(static_cast<uint64_t>(i + 1), 5);
        pk.base.tag = static_cast<uint64_t>(i % 4);
        rb.push(Port::Local, pk, 0);
    }
    auto launches = rb.arbitrate(0, [&](const OpticalPacket &pkt) {
        return outs[pkt.base.tag];
    });
    EXPECT_EQ(launches.size(), 4u);
}

TEST(OldestFirst, NetworkDeliversEverything)
{
    PhastlaneParams p;
    p.bufferArbitration = BufferArbitration::OldestFirst;
    p.routerBufferEntries = 4;
    PhastlaneNetwork net(p);
    PacketId id = 1;
    for (NodeId src = 0; src < 64; src += 3) {
        Packet b;
        b.id = id++;
        b.src = src;
        b.broadcast = true;
        ASSERT_TRUE(net.inject(b));
    }
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 100000)
        net.step();
    EXPECT_EQ(net.inFlight(), 0u);
}

} // namespace
} // namespace phastlane::core
