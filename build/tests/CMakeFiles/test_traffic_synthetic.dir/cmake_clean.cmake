file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_synthetic.dir/test_traffic_synthetic.cpp.o"
  "CMakeFiles/test_traffic_synthetic.dir/test_traffic_synthetic.cpp.o.d"
  "test_traffic_synthetic"
  "test_traffic_synthetic.pdb"
  "test_traffic_synthetic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
