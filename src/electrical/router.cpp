#include "electrical/router.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::electrical {

ElectricalRouter::ElectricalRouter(NodeId self,
                                   const ElectricalParams &params)
    : self_(self),
      params_(params),
      inputs_(static_cast<size_t>(kAllPorts * params.vcsPerPort)),
      outputs_(static_cast<size_t>(kMeshPorts * params.vcsPerPort)),
      vaPtr_(kMeshPorts, 0),
      saPtr_(kMeshPorts, 0),
      acceptPtr_(kAllPorts, 0),
      table_(params.vctmTableEntries)
{
}

InputVc &
ElectricalRouter::inputVc(Port p, int v)
{
    return inputs_[static_cast<size_t>(
        portIndex(p) * params_.vcsPerPort + v)];
}

const InputVc &
ElectricalRouter::inputVc(Port p, int v) const
{
    return inputs_[static_cast<size_t>(
        portIndex(p) * params_.vcsPerPort + v)];
}

OutputVc &
ElectricalRouter::outputVc(Port p, int v)
{
    PL_ASSERT(p != Port::Local, "no output VCs on the local port");
    return outputs_[static_cast<size_t>(
        portIndex(p) * params_.vcsPerPort + v)];
}

int
ElectricalRouter::freeInputVc(Port p) const
{
    for (int v = 0; v < params_.vcsPerPort; ++v) {
        if (!inputVc(p, v).busy())
            return v;
    }
    return -1;
}

Cycle
ElectricalRouter::vaStage(Cycle arrival) const
{
    const int off = std::max(0, params_.routerDelay - 2);
    return arrival + static_cast<Cycle>(off);
}

Cycle
ElectricalRouter::saStage(Cycle arrival) const
{
    return arrival + static_cast<Cycle>(params_.routerDelay - 1);
}

int
ElectricalRouter::allocateVcs(Cycle now)
{
    const int V = params_.vcsPerPort;
    int grants = 0;
    for (int po = 0; po < kMeshPorts; ++po) {
        const Port out = portFromIndex(po);
        // Requesters: global input VC indices with an unallocated
        // branch toward this port.
        std::vector<int> reqs;
        for (int gi = 0; gi < kAllPorts * V; ++gi) {
            const InputVc &vc = inputs_[static_cast<size_t>(gi)];
            if (!vc.busy() || vc.ejecting)
                continue;
            if (now < vaStage(vc.arrivedAt))
                continue;
            if ((vc.pendingMesh & (1u << po)) == 0)
                continue;
            if (vc.branchVc[po] >= 0)
                continue;
            reqs.push_back(gi);
        }
        if (reqs.empty())
            continue;
        // Free output VCs (credit returned, not assigned).
        std::vector<int> free_vcs;
        for (int v = 0; v < V; ++v) {
            const OutputVc &ovc = outputVc(out, v);
            if (ovc.state == OutputVc::State::Free &&
                ovc.freeAt <= now) {
                free_vcs.push_back(v);
            }
        }
        if (free_vcs.empty())
            continue;
        // Round-robin over requesters starting at the port's pointer.
        std::sort(reqs.begin(), reqs.end(), [&](int a, int b) {
            const int total = kAllPorts * V;
            const int ra = (a - vaPtr_[po] + total) % total;
            const int rb = (b - vaPtr_[po] + total) % total;
            return ra < rb;
        });
        const size_t n =
            std::min(reqs.size(), free_vcs.size());
        for (size_t i = 0; i < n; ++i) {
            InputVc &vc = inputs_[static_cast<size_t>(reqs[i])];
            vc.branchVc[po] = free_vcs[i];
            outputVc(out, free_vcs[i]).state =
                OutputVc::State::Assigned;
            ++grants;
        }
        vaPtr_[po] = (reqs[n - 1] + 1) % (kAllPorts * V);
    }
    return grants;
}

std::vector<SaWinner>
ElectricalRouter::allocateSwitch(Cycle now)
{
    const int V = params_.vcsPerPort;
    const int total = kAllPorts * V;
    std::vector<SaWinner> winners;
    int input_grants[kAllPorts] = {0, 0, 0, 0, 0};

    // Eligible requests: request[po] holds the input VCs wanting
    // output port po this cycle.
    std::array<std::vector<int>, kMeshPorts> requests;
    for (int gi = 0; gi < total; ++gi) {
        const InputVc &vc = inputs_[static_cast<size_t>(gi)];
        if (!vc.busy() || now < saStage(vc.arrivedAt))
            continue;
        for (int po = 0; po < kMeshPorts; ++po) {
            if (vc.branchVc[po] >= 0)
                requests[static_cast<size_t>(po)].push_back(gi);
        }
    }

    bool output_matched[kMeshPorts] = {false, false, false, false};
    // (gi, po) pairs already matched this cycle.
    std::vector<uint8_t> pair_matched(
        static_cast<size_t>(total) * kMeshPorts, 0);

    const int iterations = std::max(1, params_.allocIterations);
    for (int iter = 0; iter < iterations; ++iter) {
        // Grant: every unmatched output offers to one requester.
        int grant_to[kMeshPorts] = {-1, -1, -1, -1};
        for (int po = 0; po < kMeshPorts; ++po) {
            if (output_matched[po])
                continue;
            int best = -1;
            int best_rank = total;
            for (int gi : requests[static_cast<size_t>(po)]) {
                if (pair_matched[static_cast<size_t>(gi) *
                                     kMeshPorts + po])
                    continue;
                if (input_grants[gi / V] >= params_.inputSpeedup)
                    continue;
                const int rank = (gi - saPtr_[po] + total) % total;
                if (rank < best_rank) {
                    best = gi;
                    best_rank = rank;
                }
            }
            grant_to[po] = best;
        }
        // Accept: each input port accepts grants in round-robin
        // order of output ports, within its speedup budget.
        bool any = false;
        for (int pi = 0; pi < kAllPorts; ++pi) {
            for (int k = 0; k < kMeshPorts; ++k) {
                const int po =
                    (acceptPtr_[static_cast<size_t>(pi)] + k) %
                    kMeshPorts;
                const int gi = grant_to[po];
                if (gi < 0 || gi / V != pi)
                    continue;
                if (input_grants[pi] >= params_.inputSpeedup)
                    continue;
                InputVc &vc = inputs_[static_cast<size_t>(gi)];
                winners.push_back(
                    SaWinner{portFromIndex(pi), gi % V,
                             portFromIndex(po), vc.branchVc[po]});
                output_matched[po] = true;
                pair_matched[static_cast<size_t>(gi) * kMeshPorts +
                             po] = 1;
                ++input_grants[pi];
                grant_to[po] = -1;
                any = true;
                // iSLIP pointer update: only on first-iteration
                // matches, to preserve desynchronization.
                if (iter == 0) {
                    saPtr_[po] = (gi + 1) % total;
                    acceptPtr_[static_cast<size_t>(pi)] =
                        (po + 1) % kMeshPorts;
                }
            }
        }
        if (!any)
            break;
    }
    return winners;
}

} // namespace phastlane::electrical
