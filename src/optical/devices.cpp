#include "optical/devices.hpp"

#include <cmath>

namespace phastlane::optical {

int
PacketFormat::payloadWaveguides(int wavelengths) const
{
    return (payloadBits + wavelengths - 1) / wavelengths;
}

int
PacketFormat::controlWaveguides() const
{
    return (controlBits + controlWdm - 1) / controlWdm;
}

int
PacketFormat::totalWaveguides(int wavelengths) const
{
    return payloadWaveguides(wavelengths) + controlWaveguides();
}

double
ChipGeometry::dieEdgeMm() const
{
    const double die_area =
        nodeAreaMm2 * static_cast<double>(meshWidth * meshHeight);
    return std::sqrt(die_area);
}

double
ChipGeometry::nodePitchMm() const
{
    return dieEdgeMm() / static_cast<double>(meshWidth);
}

} // namespace phastlane::optical
