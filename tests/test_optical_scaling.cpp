/**
 * @file
 * Device-scaling model tests (paper Fig 4): the 16 nm extrapolations
 * must land on the published endpoints and behave sensibly between the
 * anchors.
 */

#include <gtest/gtest.h>

#include "optical/scaling.hpp"

namespace phastlane::optical {
namespace {

constexpr std::array<Scaling, 3> kAll = {
    Scaling::Optimistic, Scaling::Average, Scaling::Pessimistic};

TEST(Scaling, PaperTransmitEndpointsAt16nm)
{
    DeviceScalingModel m;
    // Paper: 8.0 - 19.4 ps at 16 nm.
    EXPECT_NEAR(m.txDelayPs(Scaling::Optimistic, 16.0), 8.0, 0.1);
    EXPECT_NEAR(m.txDelayPs(Scaling::Pessimistic, 16.0), 19.4, 0.1);
    const double avg = m.txDelayPs(Scaling::Average, 16.0);
    EXPECT_GT(avg, 8.0);
    EXPECT_LT(avg, 19.4);
}

TEST(Scaling, PaperReceiveEndpointsAt16nm)
{
    DeviceScalingModel m;
    // Paper: 1.8 - 3.7 ps at 16 nm.
    EXPECT_NEAR(m.rxDelayPs(Scaling::Optimistic, 16.0), 1.8, 0.05);
    EXPECT_NEAR(m.rxDelayPs(Scaling::Pessimistic, 16.0), 3.7, 0.05);
    const double avg = m.rxDelayPs(Scaling::Average, 16.0);
    EXPECT_GT(avg, 1.8);
    EXPECT_LT(avg, 3.7);
}

TEST(Scaling, AllFitsAgreeAtTheAnchors)
{
    DeviceScalingModel m;
    for (Scaling s : kAll) {
        EXPECT_NEAR(m.txDelayPs(s, 22.0), m.txAnchor22(), 1e-9);
        EXPECT_NEAR(m.txDelayPs(s, 45.0), m.txAnchor45(), 1e-9);
        EXPECT_NEAR(m.rxDelayPs(s, 22.0), m.rxAnchor22(), 1e-9);
        EXPECT_NEAR(m.rxDelayPs(s, 45.0), m.rxAnchor45(), 1e-9);
    }
}

TEST(Scaling, DelaysShrinkWithTechnology)
{
    DeviceScalingModel m;
    for (Scaling s : kAll) {
        double prev_tx = 1e9, prev_rx = 1e9;
        for (double node : {45.0, 32.0, 22.0, 16.0}) {
            const double tx = m.txDelayPs(s, node);
            const double rx = m.rxDelayPs(s, node);
            EXPECT_LT(tx, prev_tx) << scalingName(s) << " @" << node;
            EXPECT_LT(rx, prev_rx) << scalingName(s) << " @" << node;
            EXPECT_GT(tx, 0.0);
            EXPECT_GT(rx, 0.0);
            prev_tx = tx;
            prev_rx = rx;
        }
    }
}

TEST(Scaling, ScenarioOrderingBelowAnchors)
{
    DeviceScalingModel m;
    // Below 22 nm: log (optimistic) < linear (average) < exp
    // (pessimistic).
    for (double node : {20.0, 18.0, 16.0}) {
        EXPECT_LT(m.txDelayPs(Scaling::Optimistic, node),
                  m.txDelayPs(Scaling::Average, node));
        EXPECT_LT(m.txDelayPs(Scaling::Average, node),
                  m.txDelayPs(Scaling::Pessimistic, node));
        EXPECT_LT(m.rxDelayPs(Scaling::Optimistic, node),
                  m.rxDelayPs(Scaling::Average, node));
        EXPECT_LT(m.rxDelayPs(Scaling::Average, node),
                  m.rxDelayPs(Scaling::Pessimistic, node));
    }
}

TEST(Scaling, TransmitDominatesReceive)
{
    DeviceScalingModel m;
    for (Scaling s : kAll) {
        for (double node : {45.0, 32.0, 22.0, 16.0})
            EXPECT_GT(m.txDelayPs(s, node), m.rxDelayPs(s, node));
    }
}

TEST(Scaling, NamesAreStable)
{
    EXPECT_STREQ(scalingName(Scaling::Optimistic), "optimistic");
    EXPECT_STREQ(scalingName(Scaling::Average), "average");
    EXPECT_STREQ(scalingName(Scaling::Pessimistic), "pessimistic");
}

} // namespace
} // namespace phastlane::optical
