file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_patterns.dir/test_traffic_patterns.cpp.o"
  "CMakeFiles/test_traffic_patterns.dir/test_traffic_patterns.cpp.o.d"
  "test_traffic_patterns"
  "test_traffic_patterns.pdb"
  "test_traffic_patterns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
