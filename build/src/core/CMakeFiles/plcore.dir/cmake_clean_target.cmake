file(REMOVE_RECURSE
  "libplcore.a"
)
