# Empty dependencies file for test_electrical_network.
# This may be replaced when dependencies are built.
