#include "sim/metrics.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace phastlane::sim {

void
LatencyBucket::add(const Delivery &d)
{
    const double lat = static_cast<double>(d.at - d.packet.createdAt);
    total.add(lat);
    network.add(static_cast<double>(d.at - d.injectedAt));
    hist.add(lat);
}

LatencyCollector::LatencyCollector(const MeshTopology &mesh)
    : mesh_(mesh),
      byDistance_(static_cast<size_t>(mesh.width() + mesh.height() -
                                      1))
{
}

void
LatencyCollector::add(const Delivery &d)
{
    overall_.add(d);
    byKind_[static_cast<size_t>(d.packet.kind)].add(d);
    const int dist = mesh_.hopDistance(d.packet.src, d.node);
    PL_ASSERT(dist >= 0 &&
                  dist < static_cast<int>(byDistance_.size()) + 1,
              "distance out of range");
    if (dist > 0)
        byDistance_[static_cast<size_t>(dist - 1)].add(d);
}

void
LatencyCollector::addAll(const std::vector<Delivery> &deliveries)
{
    for (const auto &d : deliveries)
        add(d);
}

const LatencyBucket &
LatencyCollector::byKind(MessageKind k) const
{
    return byKind_[static_cast<size_t>(k)];
}

const LatencyBucket &
LatencyCollector::byDistance(int hops) const
{
    PL_ASSERT(hops >= 1 &&
                  hops <= static_cast<int>(byDistance_.size()),
              "distance out of range");
    return byDistance_[static_cast<size_t>(hops - 1)];
}

std::string
LatencyCollector::report() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "deliveries: %llu  mean %.1f  p50 %.1f  p99 %.1f "
                  "(cycles, creation->delivery)\n",
                  static_cast<unsigned long long>(count()),
                  overall_.total.mean(), overall_.hist.quantile(0.5),
                  overall_.hist.quantile(0.99));
    out += buf;
    for (MessageKind k :
         {MessageKind::Request, MessageKind::Response,
          MessageKind::Invalidate, MessageKind::Writeback,
          MessageKind::Synthetic}) {
        const LatencyBucket &b = byKind(k);
        if (b.total.count() == 0)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "  %-10s n=%-8llu mean %.1f  p99 %.1f\n",
                      messageKindName(k),
                      static_cast<unsigned long long>(
                          b.total.count()),
                      b.total.mean(), b.hist.quantile(0.99));
        out += buf;
    }
    out += "  latency by distance:";
    for (int d = 1; d <= maxDistance(); ++d) {
        const LatencyBucket &b = byDistance(d);
        if (b.total.count() == 0)
            continue;
        std::snprintf(buf, sizeof(buf), " %d:%.1f", d,
                      b.total.mean());
        out += buf;
    }
    out += '\n';
    return out;
}

} // namespace phastlane::sim
