
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/cacti_lite.cpp" "src/power/CMakeFiles/plpower.dir/cacti_lite.cpp.o" "gcc" "src/power/CMakeFiles/plpower.dir/cacti_lite.cpp.o.d"
  "/root/repo/src/power/electrical_power.cpp" "src/power/CMakeFiles/plpower.dir/electrical_power.cpp.o" "gcc" "src/power/CMakeFiles/plpower.dir/electrical_power.cpp.o.d"
  "/root/repo/src/power/optical_power.cpp" "src/power/CMakeFiles/plpower.dir/optical_power.cpp.o" "gcc" "src/power/CMakeFiles/plpower.dir/optical_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/plcore.dir/DependInfo.cmake"
  "/root/repo/build/src/electrical/CMakeFiles/plelectrical.dir/DependInfo.cmake"
  "/root/repo/build/src/optical/CMakeFiles/ploptical.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/plnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
