/**
 * @file
 * Device-delay technology scaling (paper Fig 4).
 *
 * The paper starts from Kirman et al.'s 45->22 nm component delays and
 * extrapolates to 16 nm with three curve fits: logarithmic
 * (optimistic), linear (average), and exponential (pessimistic),
 * yielding 16 nm transmit delays of 8.0-19.4 ps and receive delays of
 * 1.8-3.7 ps.
 *
 * We do not have the Kirman raw data, so we reconstruct the 22 nm and
 * 45 nm aggregate anchor points such that two-point fits of the three
 * families land exactly on the paper's published 16 nm endpoints (see
 * DESIGN.md 3.3). Every scenario's curve passes through both anchors;
 * the families only differ in how they interpolate/extrapolate.
 */

#ifndef PHASTLANE_OPTICAL_SCALING_HPP
#define PHASTLANE_OPTICAL_SCALING_HPP

#include <string>

namespace phastlane::optical {

/** Technology scaling scenario for 16 nm optical devices. */
enum class Scaling {
    Optimistic, ///< logarithmic fit
    Average,    ///< linear fit
    Pessimistic ///< exponential fit
};

/** Scenario name as used in the paper's figures. */
const char *scalingName(Scaling s);

/**
 * Aggregate transmit (modulator + driver) and receive (detector +
 * amplifier) delay versus technology node, per scaling scenario.
 */
class DeviceScalingModel
{
  public:
    DeviceScalingModel();

    /** Transmit-side delay at @p node_nm for scenario @p s. [ps] */
    double txDelayPs(Scaling s, double node_nm) const;

    /** Receive-side delay at @p node_nm for scenario @p s. [ps] */
    double rxDelayPs(Scaling s, double node_nm) const;

    /** Anchor values used by all fits. [ps] */
    double txAnchor22() const { return tx22_; }
    double txAnchor45() const { return tx45_; }
    double rxAnchor22() const { return rx22_; }
    double rxAnchor45() const { return rx45_; }

  private:
    /** Evaluate the scenario's fit through (22, d22) and (45, d45). */
    static double fit(Scaling s, double d22, double d45, double node_nm);

    // Reconstructed aggregate anchors (see file comment).
    double tx22_;
    double tx45_;
    double rx22_;
    double rx45_;
};

} // namespace phastlane::optical

#endif // PHASTLANE_OPTICAL_SCALING_HPP
