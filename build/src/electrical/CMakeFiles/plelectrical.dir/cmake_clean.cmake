file(REMOVE_RECURSE
  "CMakeFiles/plelectrical.dir/network.cpp.o"
  "CMakeFiles/plelectrical.dir/network.cpp.o.d"
  "CMakeFiles/plelectrical.dir/nic.cpp.o"
  "CMakeFiles/plelectrical.dir/nic.cpp.o.d"
  "CMakeFiles/plelectrical.dir/router.cpp.o"
  "CMakeFiles/plelectrical.dir/router.cpp.o.d"
  "CMakeFiles/plelectrical.dir/vctm.cpp.o"
  "CMakeFiles/plelectrical.dir/vctm.cpp.o.d"
  "libplelectrical.a"
  "libplelectrical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plelectrical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
