/**
 * @file
 * Open-loop synthetic traffic driver (paper Fig 9): Bernoulli
 * injection at a configured rate per node, a chosen destination
 * pattern, and warmup / measurement / drain phases. Packets that the
 * NIC cannot accept wait in an unbounded per-node source queue, so
 * source queueing time is part of the measured latency (standard
 * BookSim methodology).
 */

#ifndef PHASTLANE_TRAFFIC_SYNTHETIC_HPP
#define PHASTLANE_TRAFFIC_SYNTHETIC_HPP

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/network.hpp"
#include "traffic/adversarial.hpp"
#include "traffic/patterns.hpp"

namespace phastlane::traffic {

/** Configuration of one open-loop run. */
struct SyntheticConfig {
    Pattern pattern = Pattern::UniformRandom;

    /** Hotspot fraction / node (only Hotspot reads these). */
    PatternOptions patternOpts;

    /** Adversarial source mix layered on the pattern; None adds no
     *  RNG draws, keeping legacy runs bit-identical. */
    AdversarialConfig adversarial;

    /** Offered load, packets per node per cycle. */
    double injectionRate = 0.01;

    /** Fraction of injected messages that are broadcasts. */
    double broadcastFraction = 0.0;

    Cycle warmupCycles = 1000;
    Cycle measureCycles = 5000;

    /** Stop waiting for stragglers after this many drain cycles. */
    Cycle maxDrainCycles = 50000;

    uint64_t seed = 42;
};

/** Results of one open-loop run. */
struct SyntheticResult {
    double offeredRate = 0.0;   ///< packets/node/cycle offered
    double acceptedRate = 0.0;  ///< packets/node/cycle delivered
    double avgLatency = 0.0;    ///< creation -> delivery, cycles
    double avgNetLatency = 0.0; ///< injection -> delivery, cycles
    double p99Latency = 0.0;
    uint64_t measuredPackets = 0;
    bool saturated = false; ///< latency diverged / backlog exploded
};

/**
 * Drives a Network with Bernoulli traffic and measures latency and
 * accepted throughput.
 */
class SyntheticDriver
{
  public:
    SyntheticDriver(Network &net, const SyntheticConfig &cfg);

    /** Run warmup + measurement + drain; returns the results. */
    SyntheticResult run();

    // Step-wise interface, equivalent to run() but with the
    // net_.step() call in the caller's hands so a MultiSim can
    // interleave many drivers' cycles:
    //   begin();
    //   while (!done()) { preStep(); net.step(); postStep(); }
    //   result = finish();

    /** Arm the warmup/measurement window at the network's current
     *  cycle. Call exactly once, before the first preStep(). */
    void begin();
    /** True when the run needs no more cycles (measurement finished
     *  and the drain completed, timed out, or was skipped). */
    bool done() const;
    /** Injection side of one cycle: generate (measure phase only)
     *  and pump the source queues. */
    void preStep();
    /** Harvest side of one cycle: collect deliveries, check the
     *  backlog saturation bail-out, advance the phase. */
    void postStep();
    /** Build the result (call once, after done() turns true). */
    SyntheticResult finish();

    Network &network() { return net_; }

    /** Latency threshold (cycles) above which we declare saturation. */
    static constexpr double kSaturationLatency = 500.0;

  private:
    enum class Phase : uint8_t { Idle, Measure, Drain, Done };

    void generate(Cycle now);
    void pumpSourceQueues();
    void harvest(bool measuring);
    bool drainIdle() const;

    Network &net_;
    SyntheticConfig cfg_;
    Rng rng_;
    std::vector<std::deque<Packet>> sourceQueues_;
    uint64_t nextPacketId_ = 1;

    Phase phase_ = Phase::Idle;
    bool saturated_ = false;
    Cycle measureStart_ = 0;
    Cycle measureEnd_ = 0;
    Cycle drainDeadline_ = 0;
    uint64_t backlogLimit_ = 0;
    RunningStat latency_;
    RunningStat netLatency_;
    Histogram latencyHist_{10.0, 500};
    uint64_t measuredDeliveries_ = 0;
    uint64_t offeredMeasured_ = 0;
};

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_SYNTHETIC_HPP
