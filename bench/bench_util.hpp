/**
 * @file
 * Shared helpers for the paper-artifact benchmark binaries.
 *
 * Every bench accepts:
 *   --csv <path>   also write the table as CSV
 *   --quick        reduced workload sizes (CI-friendly)
 *   --seed <n>     workload seed (default 12345)
 *   --threads <n>  simulation threads (default: PL_THREADS env, else
 *                  hardware concurrency; results are identical at any
 *                  thread count)
 */

#ifndef PHASTLANE_BENCH_BENCH_UTIL_HPP
#define PHASTLANE_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/parallel.hpp"

namespace phastlane::bench {

/** Parsed common options. */
struct BenchOptions {
    std::string csvPath;
    bool quick = false;
    uint64_t seed = 12345;
    int threads = 0; ///< resolved: >= 1
    Config raw;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        o.raw = Config::fromArgs(argc, argv);
        o.csvPath = o.raw.getString("csv");
        o.quick = o.raw.getBool("quick", false);
        o.seed = static_cast<uint64_t>(o.raw.getInt("seed", 12345));
        o.threads = sim::resolveThreadCount(
            static_cast<int>(o.raw.getInt("threads", 0)));
        return o;
    }
};

/** Print a titled table and mirror it to CSV when requested. */
inline void
emit(const BenchOptions &opts, const std::string &title,
     const TextTable &table, const std::string &csv_suffix = "")
{
    std::printf("\n=== %s ===\n", title.c_str());
    table.print();
    if (!opts.csvPath.empty()) {
        std::string path = opts.csvPath;
        if (!csv_suffix.empty()) {
            const auto dot = path.rfind('.');
            if (dot == std::string::npos)
                path += "_" + csv_suffix;
            else
                path.insert(dot, "_" + csv_suffix);
        }
        table.writeCsv(path);
        std::printf("[csv written to %s]\n", path.c_str());
    }
}

} // namespace phastlane::bench

#endif // PHASTLANE_BENCH_BENCH_UTIL_HPP
