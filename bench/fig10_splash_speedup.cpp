/**
 * @file
 * Figure 10: network speedup of the optical configurations relative
 * to the three-cycle electrical baseline on the ten SPLASH2-like
 * workloads (identical pre-generated transaction streams replayed
 * through every network).
 *
 * Speedup is the ratio of workload completion cycles
 * (Electrical3 / config). Expected shape (paper): >1.5X on six
 * benchmarks, >2.8X on three, Barnes/Cholesky/Ocean/FMM sensitive to
 * buffering (Ocean needs ~64 entries and FMM ~32 to match the
 * baseline), and the 5/8-hop networks marginally different from
 * 4-hop.
 */

#include <memory>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "sim/configs.hpp"
#include "sim/parallel.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"

using namespace phastlane;
using namespace phastlane::sim;
using namespace phastlane::traffic;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    const auto configs = standardConfigs();

    TextTable t({"benchmark", "Optical4", "Optical5", "Optical8",
                 "Optical4B32", "Optical4B64", "Optical4IB",
                 "Electrical2", "Electrical3 [cycles]"});
    TextTable detail({"benchmark", "config", "cycles", "speedup",
                      "msg latency [cyc]", "round trip [cyc]",
                      "drops"});

    double speedup_sum = 0.0;
    int speedup_count = 0;

    for (auto prof : splashSuite()) {
        if (opts.quick)
            prof.txnsPerNode = 60;
        const auto streams =
            generateStreams(prof, 64, opts.seed);

        // All configurations replay the identical stream
        // independently, so they fan out across cores; rows are
        // emitted afterwards in configuration order, unchanged.
        struct ConfigResult {
            CoherenceResult r;
            uint64_t drops = 0;
        };
        std::vector<ConfigResult> results(configs.size());
        sim::parallelFor(
            configs.size(),
            [&](size_t i) {
                auto net = configs[i].make(1);
                CoherenceDriver driver(*net, streams,
                                       prof.mshrLimit);
                results[i].r = driver.run();
                if (auto *pl =
                        dynamic_cast<core::PhastlaneNetwork *>(
                            net.get())) {
                    results[i].drops =
                        pl->phastlaneCounters().drops;
                }
            },
            opts.threads);

        double base_cycles = 0.0;
        std::vector<std::string> row = {prof.name};
        std::vector<std::pair<std::string, double>> speedups;
        for (size_t i = 0; i < configs.size(); ++i) {
            const NetConfig &cfg = configs[i];
            const CoherenceResult &r = results[i].r;
            if (cfg.name == "Electrical3")
                base_cycles =
                    static_cast<double>(r.completionCycles);
            speedups.emplace_back(
                cfg.name, static_cast<double>(r.completionCycles));
            detail.addRow(
                {prof.name, cfg.name,
                 TextTable::num(static_cast<int64_t>(
                     r.completionCycles)),
                 "", TextTable::num(r.avgMessageLatency, 1),
                 TextTable::num(r.avgRoundTrip, 1),
                 TextTable::num(
                     static_cast<int64_t>(results[i].drops))});
        }
        for (const char *name :
             {"Optical4", "Optical5", "Optical8", "Optical4B32",
              "Optical4B64", "Optical4IB", "Electrical2"}) {
            for (const auto &[n, cycles] : speedups) {
                if (n == name) {
                    const double spd = base_cycles / cycles;
                    row.push_back(TextTable::num(spd, 2));
                    if (std::string(name) == "Optical4") {
                        speedup_sum += spd;
                        ++speedup_count;
                    }
                }
            }
        }
        row.push_back(
            TextTable::num(static_cast<int64_t>(base_cycles)));
        t.addRow(row);
        std::printf("[%s done]\n", prof.name.c_str());
        std::fflush(stdout);
    }

    bench::emit(opts,
                "Fig 10: SPLASH2 network speedup vs Electrical3",
                t);
    bench::emit(opts, "Fig 10 detail: per-config results", detail,
                "detail");
    std::printf(
        "\nOptical4 mean speedup: %.2fX (paper headline: ~2X)\n",
        speedup_sum / speedup_count);
    return 0;
}
