#include "core/batch.hpp"

#include "common/log.hpp"

namespace phastlane::core {

NetworkBatch::~NetworkBatch() { detachAll(); }

bool
NetworkBatch::eligible(const PhastlaneNetwork &net)
{
    return !net.useShardedStep() && net.shards_.empty() &&
           net.observer_ == nullptr &&
           net.params_.wavefront != WavefrontModel::GlobalPriority;
}

bool
NetworkBatch::compatible(const PhastlaneNetwork &net) const
{
    return nets_.empty() || net.mesh_.nodeCount() == nodeCount_;
}

void
NetworkBatch::attach(PhastlaneNetwork &net)
{
    PL_ASSERT(eligible(net), "network not batch-eligible");
    PL_ASSERT(compatible(net), "mesh shape differs from the gang");
    PL_ASSERT(net.scratch_ == &net.ownScratch_,
              "network already attached to a batch");
    if (nets_.empty()) {
        nodeCount_ = net.mesh_.nodeCount();
        nicWords_ = (nodeCount_ + 63) / 64;
        scratch_ = std::make_unique<PhastlaneNetwork::StepScratch>(
            nodeCount_);
    }
    nets_.push_back(&net);
    launchBoard_.resize(nets_.size() * static_cast<size_t>(nodeCount_));
    nicOcc_.resize(nets_.size() * static_cast<size_t>(nicWords_), 0);
    // Growing the backing vectors may have moved them; re-point every
    // attached instance, not just the new one.
    rebindAll();
}

void
NetworkBatch::rebindAll()
{
    for (size_t i = 0; i < nets_.size(); ++i) {
        PhastlaneNetwork &net = *nets_[i];
        net.scratch_ = scratch_.get();
        Cycle *board = &launchBoard_[i * static_cast<size_t>(nodeCount_)];
        for (NodeId r = 0; r < nodeCount_; ++r)
            net.routers_[static_cast<size_t>(r)].bindBoard(&board[r]);
        uint64_t *occ = &nicOcc_[i * static_cast<size_t>(nicWords_)];
        net.batchNicOcc_ = occ;
        for (int w = 0; w < nicWords_; ++w)
            occ[w] = 0;
        for (NodeId n = 0; n < nodeCount_; ++n) {
            if (!net.nics_[static_cast<size_t>(n)].empty())
                occ[static_cast<size_t>(n) >> 6] |=
                    uint64_t{1} << (static_cast<size_t>(n) & 63);
        }
    }
}

void
NetworkBatch::detachAll()
{
    for (PhastlaneNetwork *net : nets_) {
        net->scratch_ = &net->ownScratch_;
        net->batchNicOcc_ = nullptr;
        for (auto &rb : net->routers_)
            rb.bindBoard(nullptr);
    }
    nets_.clear();
    launchBoard_.clear();
    nicOcc_.clear();
    scratch_.reset();
    nodeCount_ = 0;
    nicWords_ = 0;
}

void
NetworkBatch::batchNicToLocal(PhastlaneNetwork &net, size_t slot)
{
    // Same visit set and order as nicToLocalQueues(): the occupancy
    // bits walk the non-empty NICs in ascending node order; NICs only
    // fill through inject() (which sets the bit) and only drain here,
    // so a clear bit is exact, not conservative.
    uint64_t *occ = &nicOcc_[slot * static_cast<size_t>(nicWords_)];
    const int transfers = net.params_.nicTransfersPerCycle;
    for (int w = 0; w < nicWords_; ++w) {
        uint64_t bits = occ[w];
        while (bits != 0) {
            const int b = __builtin_ctzll(bits);
            bits &= bits - 1;
            const NodeId n = static_cast<NodeId>(w * 64 + b);
            auto &nic = net.nics_[static_cast<size_t>(n)];
            auto &rb = net.routers_[static_cast<size_t>(n)];
            for (int i = 0; i < transfers && !nic.empty() &&
                            rb.hasSpace(Port::Local);
                 ++i) {
                nic.popHeadInto(
                    rb.emplaceEntry(Port::Local, net.cycle_ + 1).pkt);
            }
            if (nic.empty())
                occ[w] &= ~(uint64_t{1} << b);
        }
    }
}

void
NetworkBatch::batchLaunchPhase(PhastlaneNetwork &net, size_t slot)
{
    net.scratch_->flights.clear();
    const Cycle *board =
        &launchBoard_[slot * static_cast<size_t>(nodeCount_)];
    const Cycle now = net.cycle_;
    for (NodeId r = 0; r < nodeCount_; ++r) {
        // A board value in the future means arbitrate() would have
        // early-exited: no launches, no horizon change, only the
        // rotating-pointer advance — replayed by syncRotate below
        // before the next real call.
        if (board[r] > now)
            continue;
        net.routers_[static_cast<size_t>(r)].syncRotate(now);
        net.launchRouter(r);
    }
}

void
NetworkBatch::stepOne(PhastlaneNetwork &net, size_t slot)
{
    // Mirrors PhastlaneNetwork::step() for the scalar FCFS engines;
    // eligibility guarantees no shards, no observer, no
    // GlobalPriority.
    net.deliveries_.clear();
    net.scratch_->claims.clear();
    net.returnPaths_.beginCycle();

    net.resolveOutcomes();
    batchNicToLocal(net, slot);
    batchLaunchPhase(net, slot);
    switch (net.params_.wavefront) {
      case WavefrontModel::SubstepFcfs:
        net.propagateSubstepFcfs(net.scratch_->flights);
        break;
      case WavefrontModel::BitplaneFcfs:
        net.propagateBitplane(net.scratch_->flights);
        break;
      case WavefrontModel::GlobalPriority:
        fatal("GlobalPriority wavefront is not batch-eligible");
    }

    net.events_.routerCycles +=
        static_cast<uint64_t>(net.mesh_.nodeCount());
    ++net.cycle_;
}

void
NetworkBatch::stepInstance(size_t i)
{
    PL_ASSERT(i < nets_.size(), "batch instance out of range");
    stepOne(*nets_[i], i);
}

void
NetworkBatch::stepAll()
{
    for (size_t i = 0; i < nets_.size(); ++i)
        stepOne(*nets_[i], i);
}

} // namespace phastlane::core
