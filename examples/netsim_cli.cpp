/**
 * @file
 * General-purpose simulator CLI: run any named configuration on a
 * synthetic pattern, a SPLASH2-like benchmark, or a trace file, and
 * report latency metrics, power, and link utilization.
 *
 *   # synthetic open loop
 *   ./examples/netsim_cli --config Optical4 --workload uniform \
 *       --rate 0.05 --measure 5000 --power --heatmap
 *
 *   # closed-loop coherence benchmark
 *   ./examples/netsim_cli --config Electrical3 --workload splash:Ocean \
 *       --txns 100 --metrics
 *
 *   # trace replay
 *   ./examples/netsim_cli --config Optical5 \
 *       --workload trace:/tmp/phastlane.trace
 */

#include <cstdio>
#include <memory>

#include "check/checked_network.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "core/network.hpp"
#include "sim/configs.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"
#include "traffic/synthetic.hpp"
#include "traffic/trace.hpp"

using namespace phastlane;

namespace {

void
printCommonReports(const Config &args, const sim::NetConfig &cfg,
                   Network &net, Cycle active_cycles,
                   const sim::LatencyCollector *metrics)
{
    if (metrics && args.getBool("metrics", false))
        std::printf("\n%s", metrics->report().c_str());

    if (args.getBool("power", false)) {
        const auto p = cfg.power(net, active_cycles);
        std::printf("\naverage power: %.2f W (buffers %.2f, "
                    "laser %.2f, xbar+link %.2f, static %.2f)\n",
                    p.totalW, p.bufferDynamicW + p.bufferLeakageW,
                    p.laserW + p.modulatorW + p.receiverW,
                    p.crossbarW + p.linkW,
                    p.staticW);
    }

    if (args.getBool("heatmap", false)) {
        const auto rep =
            sim::UtilizationReport::fromNetwork(net, active_cycles);
        std::printf("\nlink utilization (mean %.3f, peak %.3f):\n%s",
                    rep.meanUtilization(), rep.peakUtilization(),
                    rep.heatmap().c_str());
        std::printf("hottest links:");
        for (const auto &l : rep.hottest(5)) {
            std::printf(" %d->%s:%.2f", l.router, portName(l.out),
                        l.utilization);
        }
        std::printf("\n");
    }

    if (auto *pl = dynamic_cast<core::PhastlaneNetwork *>(&net)) {
        const auto &c = pl->phastlaneCounters();
        std::printf("\noptical: launches=%llu drops=%llu "
                    "retransmissions=%llu interim=%llu "
                    "blocked=%llu\n",
                    static_cast<unsigned long long>(c.launches),
                    static_cast<unsigned long long>(c.drops),
                    static_cast<unsigned long long>(
                        c.retransmissions),
                    static_cast<unsigned long long>(c.interimAccepts),
                    static_cast<unsigned long long>(
                        c.blockedBuffered));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Config args = Config::fromArgs(argc, argv);
    if (args.getBool("help", false)) {
        std::printf(
            "usage: netsim_cli --config <name> --workload "
            "<uniform|bitcomp|bitrev|shuffle|transpose|tornado|"
            "neighbor|hotspot|splash:<bench>|trace:<file>>\n"
            "  synthetic: --rate R --bcast F --warmup N --measure N\n"
            "  splash: --txns N --seed S\n"
            "  reports: --metrics --power --heatmap\n"
            "  checking: --check (run under the invariant checker "
            "and, where supported,\n"
            "            in lockstep with the reference oracle; "
            "aborts on divergence)\n"
            "  configs: Optical4/5/8, Optical4B32/B64/IB, "
            "Electrical2/3\n");
        return 0;
    }

    const std::string config_name =
        args.getString("config", "Optical4");
    const std::string workload =
        args.getString("workload", "uniform");
    const uint64_t seed =
        static_cast<uint64_t>(args.getInt("seed", 42));

    const sim::NetConfig cfg = sim::makeConfig(config_name);
    auto net = cfg.make(seed);
    std::unique_ptr<check::CheckedNetwork> checked;
    if (args.getBool("check", false)) {
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        if (!pl)
            panic("--check supports optical (Phastlane) "
                  "configurations only");
        checked =
            std::make_unique<check::CheckedNetwork>(pl->params());
        net.reset();
    }
    // The workload drives `drive`; reports read `report`, which stays
    // the PhastlaneNetwork so their dynamic_casts keep working when
    // --check interposes the wrapper.
    Network &drive =
        checked ? static_cast<Network &>(*checked) : *net;
    Network &report =
        checked ? static_cast<Network &>(checked->primary()) : *net;
    sim::LatencyCollector metrics(drive.mesh());

    std::printf("config %s, workload %s\n", config_name.c_str(),
                workload.c_str());

    if (workload.rfind("splash:", 0) == 0) {
        traffic::SplashProfile prof =
            traffic::splashProfile(workload.substr(7));
        prof.txnsPerNode =
            static_cast<int>(args.getInt("txns", 100));
        const auto streams =
            traffic::generateStreams(prof, drive.nodeCount(), seed);
        traffic::RecordingNetwork rec(drive);
        traffic::CoherenceDriver driver(rec, streams,
                                        prof.mshrLimit);
        // Run manually so every delivery feeds the collector.
        const auto result = driver.run();
        std::printf("completed %llu transactions in %llu cycles "
                    "(msg latency %.1f, round trip %.1f)\n",
                    static_cast<unsigned long long>(
                        result.transactions),
                    static_cast<unsigned long long>(
                        result.completionCycles),
                    result.avgMessageLatency, result.avgRoundTrip);
        printCommonReports(args, cfg, report, result.completionCycles,
                           nullptr);
    } else if (workload.rfind("trace:", 0) == 0) {
        const auto records =
            traffic::readTrace(workload.substr(6));
        const auto result = traffic::replayTrace(drive, records);
        std::printf("replayed %llu messages (%llu deliveries) in "
                    "%llu cycles, avg latency %.1f\n",
                    static_cast<unsigned long long>(result.messages),
                    static_cast<unsigned long long>(
                        result.deliveries),
                    static_cast<unsigned long long>(
                        result.completionCycle),
                    result.avgLatency);
        printCommonReports(args, cfg, report, result.completionCycle,
                           nullptr);
    } else {
        traffic::SyntheticConfig sc;
        sc.pattern = traffic::parsePattern(workload);
        sc.injectionRate = args.getDouble("rate", 0.05);
        sc.broadcastFraction = args.getDouble("bcast", 0.0);
        sc.warmupCycles =
            static_cast<Cycle>(args.getInt("warmup", 1000));
        sc.measureCycles =
            static_cast<Cycle>(args.getInt("measure", 5000));
        sc.seed = seed;
        traffic::SyntheticDriver driver(drive, sc);
        const auto result = driver.run();
        std::printf("offered %.4f accepted %.4f pkt/node/cycle, avg "
                    "latency %.1f (p99 %.1f)%s\n",
                    result.offeredRate, result.acceptedRate,
                    result.avgLatency, result.p99Latency,
                    result.saturated ? " [saturated]" : "");
        printCommonReports(args, cfg, report, drive.now(), &metrics);
    }

    if (checked) {
        // Drain so the quiescence invariants (all units delivered,
        // every drop retransmitted) can be asserted too.
        auto &pl = checked->primary();
        for (int i = 0;
             i < 200000 &&
             (pl.inFlight() > 0 || pl.bufferedPackets() > 0 ||
              pl.nicQueuedPackets() > 0);
             ++i)
            checked->step();
        checked->checkQuiescent();
        std::printf("check: ok (%s)\n",
                    checked->hasOracle()
                        ? "invariants + differential oracle"
                        : "invariants only");
    }
    return 0;
}
