/**
 * @file
 * Observer-stack composition tests: the trace and metrics observers
 * attach behind the invariant checker (and the differential oracle)
 * through CheckedNetwork::addObserver, the run still validates, and
 * every recorded total equals the network's own counters — the
 * acceptance property that tracing agrees with the simulator.
 */

#include <gtest/gtest.h>

#include <deque>

#include "check/checked_network.hpp"
#include "check/differential.hpp"
#include "core/observer.hpp"
#include "obs/observe.hpp"

namespace phastlane::check {
namespace {

/** Drive a CheckedNetwork through an explicit stream until the
 *  primary network is fully quiescent (no in-flight, buffered, or
 *  NIC-queued packets). */
void
driveStream(CheckedNetwork &net, const std::vector<Injection> &stream,
            Cycle max_cycles)
{
    std::deque<Injection> pending(stream.begin(), stream.end());
    for (Cycle guard = 0; guard < max_cycles; ++guard) {
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->at <= net.now() &&
                net.nicHasSpace(it->pkt.src) &&
                net.inject(it->pkt)) {
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
        net.step();
        if (pending.empty() && net.inFlight() == 0 &&
            net.primary().bufferedPackets() == 0 &&
            net.primary().nicQueuedPackets() == 0) {
            return;
        }
    }
    FAIL() << "network did not drain in " << max_cycles << " cycles";
}

TEST(ObsCompose, ObserversMatchCountersUnderChecking)
{
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    p.routerBufferEntries = 1; // contention => drops and blocking
    p.seed = 11;
    ASSERT_TRUE(ReferenceNetwork::supports(p));

    StreamConfig sc;
    sc.rate = 0.45;
    sc.broadcastFraction = 0.2;
    sc.cycles = 120;
    sc.seed = 11;
    const auto stream = makeStream(p, sc);
    ASSERT_FALSE(stream.empty());

    CheckedNetwork net(p);
    ASSERT_TRUE(net.hasOracle());
    obs::ObserveOptions opts;
    opts.sampleInterval = 16;
    opts.heatmapInterval = 32;
    opts.traceCapacity = 1u << 16;
    obs::MetricsRegistry registry;
    obs::MetricsObserver metrics(net.primary(), registry, opts);
    obs::TraceObserver trace(net.primary(), opts);
    net.addObserver(&metrics);
    net.addObserver(&trace);

    driveStream(net, stream, 20000);
    net.checkQuiescent();

    const auto &c = net.counters();
    const auto &pc = net.primary().phastlaneCounters();
    const auto &ev = net.primary().events();
    ASSERT_GT(c.deliveries, 0u);
    EXPECT_GT(pc.drops, 0u) << "stream too gentle to exercise drops";

    // Metrics totals must equal the network's own counters exactly.
    EXPECT_EQ(registry.findCounter("net.accepts")->value(),
              c.messagesAccepted);
    EXPECT_EQ(registry.findCounter("net.deliveries")->value(),
              c.deliveries);
    EXPECT_EQ(registry.findCounter("optical.launches")->value(),
              pc.launches);
    EXPECT_EQ(
        registry.findCounter("optical.retransmissions")->value(),
        pc.retransmissions);
    EXPECT_EQ(registry.findCounter("optical.drops")->value(),
              pc.drops);
    EXPECT_EQ(registry.findCounter("optical.taps")->value(),
              ev.tapReceives);
    EXPECT_EQ(registry.findCounter("optical.passes")->value(),
              ev.passTraversals);
    EXPECT_EQ(
        registry.findCounter("buffer.blocked_receives")->value(),
        pc.blockedBuffered);
    EXPECT_EQ(
        registry.findCounter("buffer.interim_accepts")->value(),
        pc.interimAccepts);
    EXPECT_EQ(
        registry.findHistogram("latency.accept_to_deliver")->count(),
        c.deliveries);

    // The whole-run trace kind totals agree with the same counters
    // even though the ring may have wrapped.
    const auto &ring = trace.ring();
    EXPECT_EQ(ring.kindCount(obs::TraceEvent::Deliver),
              c.deliveries);
    EXPECT_EQ(ring.kindCount(obs::TraceEvent::Drop), pc.drops);
    EXPECT_EQ(ring.kindCount(obs::TraceEvent::DropSignal), pc.drops);
    EXPECT_EQ(ring.kindCount(obs::TraceEvent::Inject),
              c.messagesAccepted);
    EXPECT_EQ(ring.kindCount(obs::TraceEvent::Launch) +
                  ring.kindCount(obs::TraceEvent::Retransmit),
              pc.launches);
    EXPECT_EQ(ring.kindCount(obs::TraceEvent::Retransmit),
              pc.retransmissions);

    // Heatmap cumulative totals across routers match too.
    const auto *hm = metrics.heatmap();
    ASSERT_NE(hm, nullptr);
    uint64_t hm_launches = 0, hm_drops = 0;
    for (const auto &cell : hm->live()) {
        hm_launches += cell.launches;
        hm_drops += cell.drops;
    }
    EXPECT_EQ(hm_launches, pc.launches);
    EXPECT_EQ(hm_drops, pc.drops);
    EXPECT_FALSE(hm->snapshots().empty());

    // The exported artifacts are non-trivial.
    EXPECT_NE(registry.toJson().find("net.deliveries"),
              std::string::npos);
    EXPECT_GT(obs::toChromeTrace(ring, net.mesh()).size(), 1000u);
}

TEST(ObsCompose, ObserversDoNotPerturbCheckedExecution)
{
    // Identical stream with and without the observer stack must yield
    // identical counters: observation is read-only.
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    p.routerBufferEntries = 2;
    p.exponentialBackoff = true;
    p.seed = 23;
    StreamConfig sc;
    sc.rate = 0.35;
    sc.cycles = 100;
    sc.seed = 23;
    const auto stream = makeStream(p, sc);

    CheckedNetwork plain(p);
    driveStream(plain, stream, 20000);
    plain.checkQuiescent();

    CheckedNetwork observed(p);
    obs::MetricsRegistry registry;
    obs::MetricsObserver metrics(observed.primary(), registry);
    obs::TraceObserver trace(observed.primary());
    observed.addObserver(&metrics);
    observed.addObserver(&trace);
    driveStream(observed, stream, 20000);
    observed.checkQuiescent();

    EXPECT_EQ(plain.counters().deliveries,
              observed.counters().deliveries);
    EXPECT_EQ(plain.counters().messagesAccepted,
              observed.counters().messagesAccepted);
    EXPECT_EQ(plain.primary().phastlaneCounters().drops,
              observed.primary().phastlaneCounters().drops);
    EXPECT_EQ(plain.primary().phastlaneCounters().retransmissions,
              observed.primary().phastlaneCounters().retransmissions);
    EXPECT_EQ(plain.now(), observed.now());
}

TEST(ObsCompose, ObserverMuxFansOutToAllChildren)
{
    obs::MetricsRegistry r1, r2;
    core::PhastlaneParams p;
    core::PhastlaneNetwork net(p);
    obs::MetricsObserver m1(net, r1), m2(net, r2);
    core::ObserverMux mux;
    EXPECT_EQ(mux.size(), 0u);
    mux.add(&m1);
    mux.add(&m2);
    mux.add(nullptr); // ignored
    EXPECT_EQ(mux.size(), 2u);

    Delivery d;
    d.at = 10;
    d.acceptedAt = 4;
    d.injectedAt = 6;
    mux.onDeliver(d);
    EXPECT_EQ(r1.findCounter("net.deliveries")->value(), 1u);
    EXPECT_EQ(r2.findCounter("net.deliveries")->value(), 1u);
}

} // namespace
} // namespace phastlane::check
