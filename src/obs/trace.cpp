#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/log.hpp"

namespace phastlane::obs {

const char *
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::Inject: return "inject";
      case TraceEvent::Launch: return "launch";
      case TraceEvent::Retransmit: return "retransmit";
      case TraceEvent::Pass: return "pass";
      case TraceEvent::Tap: return "tap";
      case TraceEvent::Deliver: return "deliver";
      case TraceEvent::BufferBlocked: return "buffered";
      case TraceEvent::InterimAccept: return "interim";
      case TraceEvent::Drop: return "drop";
      case TraceEvent::DropSignal: return "drop_signal";
      case TraceEvent::BranchFinal: return "final";
      case TraceEvent::Sample: return "sample";
      case TraceEvent::Lost: return "lost";
      case TraceEvent::Duplicate: return "duplicate";
    }
    return "?";
}

TraceRing::TraceRing(size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

std::vector<TraceRecord>
TraceRing::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(size_);
    const size_t start =
        size_ < ring_.size() ? 0 : head_; // oldest retained record
    for (size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

namespace {

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

/** Common prefix of one trace_event object. */
void
beginEvent(std::string &out, const char *name, const char *cat,
           const char *ph, Cycle ts, NodeId tid)
{
    appendF(out,
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
            "\"ts\":%" PRIu64 ",\"pid\":0,\"tid\":%d",
            name, cat, ph, ts, tid);
}

} // namespace

std::string
toChromeTrace(const TraceRing &ring, const MeshTopology &mesh)
{
    const auto records = ring.snapshot();
    std::string out;
    out.reserve(records.size() * 160 + 4096);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

    // Metadata: name the process and one timeline row per router.
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
           "\"args\":{\"name\":\"phastlane\"}}";
    for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
        const Coord c = mesh.coordOf(n);
        appendF(out,
                ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%d,\"args\":{\"name\":\"router %d (%d,%d)\"}}",
                n, n, c.x, c.y);
    }

    for (const auto &r : records) {
        out += ",\n";
        const char *name = traceEventName(r.kind);
        switch (r.kind) {
          case TraceEvent::Inject:
            beginEvent(out, name, "pkt", "i", r.cycle, r.node);
            appendF(out,
                    ",\"s\":\"t\",\"args\":{\"packet\":%" PRIu64
                    ",\"branches\":%d}}",
                    r.packet, r.aux);
            break;
          case TraceEvent::Launch:
          case TraceEvent::Retransmit:
            // One async span per optical flight, closed by the
            // terminal event (deliver/final, buffered, or drop).
            beginEvent(out, "flight", "branch", "b", r.cycle, r.node);
            appendF(out,
                    ",\"id\":%" PRIu64 ",\"args\":{\"packet\":%" PRIu64
                    ",\"attempts\":%d,\"retransmit\":%s}}",
                    r.branch, r.packet, r.aux,
                    r.kind == TraceEvent::Retransmit ? "true"
                                                     : "false");
            break;
          case TraceEvent::Pass:
          case TraceEvent::Tap:
            beginEvent(out, name, "branch", "n", r.cycle, r.node);
            appendF(out,
                    ",\"id\":%" PRIu64 ",\"args\":{\"packet\":%" PRIu64
                    "}}",
                    r.branch, r.packet);
            break;
          case TraceEvent::Deliver:
            // Deliveries carry no branch id (a Delivery is a
            // message-level record), so they render as instants on
            // the destination's row rather than nested span events.
            beginEvent(out, name, "pkt", "i", r.cycle, r.node);
            appendF(out,
                    ",\"s\":\"t\",\"args\":{\"packet\":%" PRIu64
                    ",\"latency\":%d}}",
                    r.packet, r.aux);
            break;
          case TraceEvent::BufferBlocked:
          case TraceEvent::InterimAccept:
          case TraceEvent::Drop:
          case TraceEvent::BranchFinal:
          case TraceEvent::Lost:
          case TraceEvent::Duplicate:
            beginEvent(out, name, "branch", "e", r.cycle, r.node);
            appendF(out,
                    ",\"id\":%" PRIu64 ",\"args\":{\"packet\":%" PRIu64
                    ",\"detail\":%d}}",
                    r.branch, r.packet, r.aux);
            break;
          case TraceEvent::DropSignal:
            beginEvent(out, name, "pkt", "i", r.cycle, r.node);
            appendF(out,
                    ",\"s\":\"t\",\"args\":{\"packet\":%" PRIu64
                    ",\"hops\":%d}}",
                    r.packet, r.aux);
            break;
          case TraceEvent::Sample:
            appendF(out,
                    "{\"name\":\"in_flight\",\"ph\":\"C\",\"ts\":%"
                    PRIu64 ",\"pid\":0,\"args\":{\"units\":%" PRIu64
                    "}},\n",
                    r.cycle, r.packet);
            appendF(out,
                    "{\"name\":\"buffered\",\"ph\":\"C\",\"ts\":%"
                    PRIu64 ",\"pid\":0,\"args\":{\"packets\":%" PRIu64
                    "}}",
                    r.cycle, r.branch);
            break;
        }
    }

    appendF(out,
            "\n],\"otherData\":{\"shed_records\":%" PRIu64
            ",\"retained_records\":%zu}}\n",
            ring.shedRecords(), records.size());
    return out;
}

void
writeChromeTrace(const TraceRing &ring, const MeshTopology &mesh,
                 const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write trace to %s", path.c_str());
    const std::string text = toChromeTrace(ring, mesh);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace phastlane::obs
