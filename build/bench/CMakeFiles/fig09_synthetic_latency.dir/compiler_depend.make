# Empty compiler generated dependencies file for fig09_synthetic_latency.
# This may be replaced when dependencies are built.
