file(REMOVE_RECURSE
  "CMakeFiles/test_common_geometry.dir/test_common_geometry.cpp.o"
  "CMakeFiles/test_common_geometry.dir/test_common_geometry.cpp.o.d"
  "test_common_geometry"
  "test_common_geometry.pdb"
  "test_common_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
