file(REMOVE_RECURSE
  "CMakeFiles/test_optical_area.dir/test_optical_area.cpp.o"
  "CMakeFiles/test_optical_area.dir/test_optical_area.cpp.o.d"
  "test_optical_area"
  "test_optical_area.pdb"
  "test_optical_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optical_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
