/**
 * @file
 * Phastlane-internal packet state: the immutable message plus the
 * mutable delivery bookkeeping a branch carries through buffering and
 * retransmission.
 */

#ifndef PHASTLANE_CORE_PACKET_HPP
#define PHASTLANE_CORE_PACKET_HPP

#include <vector>

#include "net/packet.hpp"

namespace phastlane::core {

/**
 * One optical packet: a unicast message or one multicast branch of a
 * broadcast.
 */
struct OpticalPacket {
    Packet base;

    /** Network-unique id of this packet/branch instance (branches of
     *  one broadcast share base.id but not branchId). */
    uint64_t branchId = 0;

    /** Final destination of this packet/branch. */
    NodeId finalDst = kInvalidNode;

    /** True for a multicast branch. */
    bool multicast = false;

    /**
     * Multicast delivery targets in path order (the last one is
     * finalDst). Served taps are skipped via tapCursor rather than
     * erased (an O(n) front-erase on the hot path), so after a drop
     * the retransmission covers exactly the unserved nodes (the paper
     * clears the Multicast bits of nodes identified via the dropped
     * packet's return-path Node ID).
     */
    std::vector<NodeId> taps;

    /** Index of the first unserved tap in taps. */
    uint32_t tapCursor = 0;

    /**
     * Duplicate-suppression watermark (DESIGN.md §10). When a
     * Packet-Dropped signal arrives with a corrupted dropper Node ID
     * the source cannot clear the served Multicast bits, so the full
     * branch is retransmitted; taps below this index were already
     * served by an earlier attempt and receivers suppress them as
     * duplicates instead of delivering twice. Always 0 when
     * dropperIdCorruptRate == 0.
     */
    uint32_t dedupBelow = 0;

    /** True when every tap has been served. */
    bool tapsDone() const { return tapCursor >= taps.size(); }

    /** The next unserved tap; requires !tapsDone(). */
    NodeId nextTap() const { return taps[tapCursor]; }

    /** Mark the next tap served. */
    void serveTap() { ++tapCursor; }

    /** The unserved taps, in path order. */
    std::vector<NodeId> remainingTaps() const
    {
        return std::vector<NodeId>(taps.begin() + tapCursor,
                                   taps.end());
    }

    /** AgeBoost promotion (DESIGN.md §14): recomputed at every launch
     *  from the buffer entry's residence age; while set, the wavefront
     *  ranks this packet as if it were travelling straight, so starved
     *  turning packets stop losing every optical arbitration. */
    bool boosted = false;

    /** Cycle the message entered the source NIC queue. */
    Cycle acceptedAt = 0;

    /** Cycle of the first optical launch (kNeverCycle until then). */
    Cycle firstInjectedAt = kNeverCycle;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_PACKET_HPP
