/**
 * @file
 * Itemized loss-budget tests and consistency with the Fig 7 peak-power
 * model.
 */

#include <gtest/gtest.h>

#include "optical/loss.hpp"
#include "optical/power_model.hpp"

namespace phastlane::optical {
namespace {

TEST(Loss, FixedPartsSumToThePeakModelConstant)
{
    LossConstants c;
    WaveguideConstants wg;
    // The itemized fixed losses (default: four taps) reproduce the
    // aggregate fixedPathLossDb the peak-power model uses.
    EXPECT_NEAR(c.fixedTotalDb(4), wg.fixedPathLossDb, 1e-9);
}

TEST(Loss, BudgetMatchesPeakModelPathLoss)
{
    LossModel loss;
    PeakPowerModel peak;
    for (int wl : {32, 64, 128}) {
        for (int hops : {1, 4, 8}) {
            const LossBudget b =
                loss.worstCasePath(0.98, wl, hops, 4);
            EXPECT_NEAR(b.totalDb(),
                        peak.pathLossDb(0.98, wl, hops), 1e-9)
                << wl << " lambda, " << hops << " hops";
        }
    }
}

TEST(Loss, CrossingsDominateTheBudget)
{
    // The paper's premise: crossings are the loss driver at realistic
    // efficiencies and hop counts.
    LossModel loss;
    const LossBudget b = loss.worstCasePath(0.98, 64, 4);
    double crossings = 0.0;
    for (const auto &item : b.items) {
        if (item.name == "waveguide crossings")
            crossings = item.db;
    }
    EXPECT_GT(crossings, 0.5 * b.totalDb());
}

TEST(Loss, PowerFactorIsExponentialInDb)
{
    LossBudget b;
    b.items.push_back({"x", 10.0});
    EXPECT_NEAR(b.powerFactor(), 10.0, 1e-9);
    b.items.push_back({"y", 10.0});
    EXPECT_NEAR(b.powerFactor(), 100.0, 1e-9);
}

TEST(Loss, PerfectCrossingsLeaveOnlyFixedLoss)
{
    LossModel loss;
    const LossBudget b = loss.worstCasePath(1.0, 64, 8, 4);
    EXPECT_NEAR(b.totalDb(), loss.constants().fixedTotalDb(4), 1e-9);
}

TEST(Loss, MoreTapsMoreLoss)
{
    LossModel loss;
    const double t2 = loss.worstCasePath(0.98, 64, 4, 2).totalDb();
    const double t6 = loss.worstCasePath(0.98, 64, 4, 6).totalDb();
    EXPECT_NEAR(t6 - t2, 4.0 * loss.constants().tapDb, 1e-9);
}

TEST(Loss, ItemizationIsComplete)
{
    LossModel loss;
    const LossBudget b = loss.worstCasePath(0.98, 64, 4);
    EXPECT_EQ(b.items.size(), 6u);
    for (const auto &item : b.items)
        EXPECT_GE(item.db, 0.0) << item.name;
}

} // namespace
} // namespace phastlane::optical
