/**
 * @file
 * Latency-collector tests.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "sim/metrics.hpp"

namespace phastlane::sim {
namespace {

Delivery
mkDelivery(NodeId src, NodeId node, Cycle created, Cycle injected,
           Cycle at, MessageKind kind = MessageKind::Synthetic)
{
    Delivery d;
    d.packet.src = src;
    d.packet.createdAt = created;
    d.packet.kind = kind;
    d.node = node;
    d.injectedAt = injected;
    d.at = at;
    return d;
}

TEST(Metrics, OverallAndKindBuckets)
{
    MeshTopology mesh(8, 8);
    LatencyCollector c(mesh);
    c.add(mkDelivery(0, 1, 0, 2, 10, MessageKind::Request));
    c.add(mkDelivery(0, 2, 0, 1, 20, MessageKind::Response));
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.overall().total.mean(), 15.0);
    EXPECT_DOUBLE_EQ(c.byKind(MessageKind::Request).total.mean(),
                     10.0);
    EXPECT_DOUBLE_EQ(c.byKind(MessageKind::Response).total.mean(),
                     20.0);
    EXPECT_EQ(c.byKind(MessageKind::Writeback).total.count(), 0u);
}

TEST(Metrics, NetworkLatencyExcludesQueueing)
{
    MeshTopology mesh(8, 8);
    LatencyCollector c(mesh);
    c.add(mkDelivery(0, 1, 0, 7, 10));
    EXPECT_DOUBLE_EQ(c.overall().total.mean(), 10.0);
    EXPECT_DOUBLE_EQ(c.overall().network.mean(), 3.0);
}

TEST(Metrics, DistanceBuckets)
{
    MeshTopology mesh(8, 8);
    LatencyCollector c(mesh);
    c.add(mkDelivery(0, 1, 0, 0, 5));   // 1 hop
    c.add(mkDelivery(0, 63, 0, 0, 40)); // 14 hops
    EXPECT_DOUBLE_EQ(c.byDistance(1).total.mean(), 5.0);
    EXPECT_DOUBLE_EQ(c.byDistance(14).total.mean(), 40.0);
    EXPECT_EQ(c.byDistance(7).total.count(), 0u);
    EXPECT_EQ(c.maxDistance(), 14);
}

TEST(Metrics, ReportMentionsPopulatedKinds)
{
    MeshTopology mesh(8, 8);
    LatencyCollector c(mesh);
    c.add(mkDelivery(0, 9, 0, 0, 12, MessageKind::Invalidate));
    const std::string rep = c.report();
    EXPECT_NE(rep.find("invalidate"), std::string::npos);
    EXPECT_EQ(rep.find("writeback"), std::string::npos);
    EXPECT_NE(rep.find("latency by distance"), std::string::npos);
}

TEST(Metrics, DrivenByARealNetwork)
{
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    MeshTopology mesh(8, 8);
    LatencyCollector c(mesh);
    Packet pkt;
    pkt.id = 1;
    pkt.src = 0;
    pkt.dst = 63;
    ASSERT_TRUE(net.inject(pkt));
    while (net.inFlight() > 0) {
        net.step();
        c.addAll(net.deliveries());
    }
    EXPECT_EQ(c.count(), 1u);
    EXPECT_EQ(c.byDistance(14).total.count(), 1u);
    // Longer distances cost more cycles on average: compare a short
    // and a long transfer.
    Packet pkt2;
    pkt2.id = 2;
    pkt2.src = 0;
    pkt2.dst = 1;
    ASSERT_TRUE(net.inject(pkt2));
    while (net.inFlight() > 0) {
        net.step();
        c.addAll(net.deliveries());
    }
    EXPECT_LT(c.byDistance(1).network.mean(),
              c.byDistance(14).network.mean());
}

TEST(Fairness, JainIndexExtremes)
{
    // Equal allocation -> 1.0; one flow hogging everything -> 1/n.
    EXPECT_DOUBLE_EQ(
        FairnessCollector::jain({5.0, 5.0, 5.0, 5.0}), 1.0);
    EXPECT_DOUBLE_EQ(
        FairnessCollector::jain({10.0, 0.0, 0.0, 0.0}), 0.25);
    EXPECT_DOUBLE_EQ(FairnessCollector::jain({}), 1.0);
    EXPECT_DOUBLE_EQ(FairnessCollector::jain({0.0, 0.0}), 1.0);
}

TEST(Fairness, PerSourceAccounting)
{
    FairnessCollector fc(4);
    fc.add(mkDelivery(0, 1, 0, 0, 10));
    fc.add(mkDelivery(0, 2, 0, 0, 20));
    fc.add(mkDelivery(1, 3, 0, 0, 30));
    EXPECT_EQ(fc.delivered(0), 2u);
    EXPECT_EQ(fc.delivered(1), 1u);
    EXPECT_EQ(fc.delivered(2), 0u);
    // Allocation (2, 1, 0, 0): Jain = 9 / (4 * 5) = 0.45.
    EXPECT_DOUBLE_EQ(fc.jainIndex(), 0.45);
    EXPECT_GE(fc.worstP99(), 30.0);
    const std::string rep = fc.report({0, 0, 7, 0});
    EXPECT_NE(rep.find("jain"), std::string::npos);
    const std::string csv = fc.csv({0, 0, 7, 0});
    EXPECT_NE(csv.find("src,delivered"), std::string::npos);
    EXPECT_NE(csv.find("\n2,0,"), std::string::npos);
}

TEST(Fairness, DrivenByARealNetworkWithStarvationAccessors)
{
    core::PhastlaneParams p;
    p.admission = core::AdmissionPolicy::AgeBoost;
    p.admissionAgeThreshold = 4;
    core::PhastlaneNetwork net(p);
    FairnessCollector fc(net.nodeCount());
    Packet pkt;
    pkt.id = 1;
    pkt.src = 3;
    pkt.dst = 60;
    ASSERT_TRUE(net.inject(pkt));
    while (net.inFlight() > 0) {
        net.step();
        fc.addAll(net.deliveries());
    }
    EXPECT_EQ(fc.delivered(3), 1u);
    EXPECT_DOUBLE_EQ(fc.jainIndex(),
                     1.0 / static_cast<double>(net.nodeCount()));
    // One uncontended packet never loses an arbitration.
    EXPECT_EQ(net.maxStarvation(), 0u);
    for (NodeId n = 0; n < net.nodeCount(); ++n)
        EXPECT_EQ(net.sourceStarvation(n), 0u);
}

} // namespace
} // namespace phastlane::sim
