/**
 * @file
 * Trace-driven methodology demo (paper Section 4): record a
 * closed-loop coherence workload once, write it to a trace file, then
 * replay the identical trace open-loop on every network configuration
 * and compare completion times -- "we changed Booksim to input the
 * same trace files used for our optical simulator".
 *
 *   ./examples/trace_record_replay [--benchmark FFT] [--txns 60]
 *       [--trace /tmp/phastlane.trace]
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "sim/configs.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"
#include "traffic/trace.hpp"

using namespace phastlane;
using namespace phastlane::traffic;

int
main(int argc, char **argv)
{
    const Config args = Config::fromArgs(argc, argv);
    SplashProfile prof =
        splashProfile(args.getString("benchmark", "FFT"));
    prof.txnsPerNode = static_cast<int>(args.getInt("txns", 60));
    const std::string trace_path =
        args.getString("trace", "/tmp/phastlane.trace");
    const uint64_t seed =
        static_cast<uint64_t>(args.getInt("seed", 7));

    // 1. Record: run the closed-loop workload once on the reference
    //    network, capturing every accepted injection.
    const auto streams = generateStreams(prof, 64, seed);
    auto ref = sim::makeConfig("Electrical3").make(seed);
    RecordingNetwork recorder(*ref);
    CoherenceDriver driver(recorder, streams, prof.mshrLimit);
    const CoherenceResult rec_result = driver.run();
    if (rec_result.timedOut)
        fatal("recording run timed out");
    writeTrace(trace_path, recorder.recorded());
    std::printf("recorded %zu messages from %s into %s "
                "(%llu cycles on the reference network)\n\n",
                recorder.recorded().size(), prof.name.c_str(),
                trace_path.c_str(),
                static_cast<unsigned long long>(
                    rec_result.completionCycles));

    // 2. Replay: every configuration consumes the identical file.
    const auto trace = readTrace(trace_path);
    TextTable t({"config", "completion [cyc]", "speedup",
                 "avg latency [cyc]"});
    double base = 0.0;
    for (const char *name :
         {"Electrical3", "Electrical2", "Optical4", "Optical5",
          "Optical8"}) {
        auto net = sim::makeConfig(name).make(seed);
        const TraceReplayResult r = replayTrace(*net, trace);
        if (base == 0.0)
            base = static_cast<double>(r.completionCycle);
        t.addRow({name,
                  TextTable::num(static_cast<int64_t>(
                      r.completionCycle)),
                  TextTable::num(
                      base / static_cast<double>(r.completionCycle),
                      2) + "x",
                  TextTable::num(r.avgLatency, 1)});
    }
    t.print();
    return 0;
}
