#include "obs/observe.hpp"

namespace phastlane::obs {

namespace {

int32_t
clamped(Cycle later, Cycle earlier)
{
    const Cycle d = later >= earlier ? later - earlier : 0;
    return d > INT32_MAX ? INT32_MAX : static_cast<int32_t>(d);
}

} // namespace

TraceObserver::TraceObserver(const core::PhastlaneNetwork &net,
                             const ObserveOptions &opts)
    : net_(net),
      ring_(opts.traceCapacity),
      sampleInterval_(opts.sampleInterval)
{
}

void
TraceObserver::onAccept(const Packet &pkt, int branches,
                        int delivery_units)
{
    (void)delivery_units;
    ring_.push(TraceRecord{net_.now(), pkt.id, 0, pkt.src, branches,
                           TraceEvent::Inject});
}

void
TraceObserver::onLaunch(const core::OpticalPacket &pkt, NodeId router,
                        Port out, int attempts)
{
    (void)out;
    ring_.push(TraceRecord{net_.now(), pkt.base.id, pkt.branchId,
                           router, attempts,
                           attempts > 0 ? TraceEvent::Retransmit
                                        : TraceEvent::Launch});
}

void
TraceObserver::onPass(const core::OpticalPacket &pkt, NodeId router)
{
    ring_.push(TraceRecord{net_.now(), pkt.base.id, pkt.branchId,
                           router, 0, TraceEvent::Pass});
}

void
TraceObserver::onDeliver(const Delivery &d)
{
    ring_.push(TraceRecord{d.at, d.packet.id, 0, d.node,
                           clamped(d.at, d.acceptedAt),
                           TraceEvent::Deliver});
}

void
TraceObserver::onTap(const core::OpticalPacket &pkt, NodeId router)
{
    ring_.push(TraceRecord{net_.now(), pkt.base.id, pkt.branchId,
                           router, 0, TraceEvent::Tap});
}

void
TraceObserver::onBranchFinal(const core::OpticalPacket &pkt,
                             NodeId router)
{
    ring_.push(TraceRecord{net_.now(), pkt.base.id, pkt.branchId,
                           router, 0, TraceEvent::BranchFinal});
}

void
TraceObserver::onBufferReceive(const core::OpticalPacket &pkt,
                               NodeId router, Port queue, bool interim)
{
    ring_.push(TraceRecord{net_.now(), pkt.base.id, pkt.branchId,
                           router, portIndex(queue),
                           interim ? TraceEvent::InterimAccept
                                   : TraceEvent::BufferBlocked});
}

void
TraceObserver::onDrop(const core::OpticalPacket &pkt, NodeId router,
                      NodeId launch_router, int signal_hops,
                      bool signal_lost)
{
    ring_.push(TraceRecord{net_.now(), pkt.base.id, pkt.branchId,
                           router, signal_hops, TraceEvent::Drop});
    // A lost drop signal never reaches the holder, so no DropSignal
    // record appears at the launch router.
    if (!signal_lost)
        ring_.push(TraceRecord{net_.now(), pkt.base.id, pkt.branchId,
                               launch_router, signal_hops,
                               TraceEvent::DropSignal});
}

void
TraceObserver::onLost(const Packet &pkt, uint64_t branch_id,
                      NodeId router, int units, core::LostCause cause)
{
    (void)cause;
    if (units <= 0)
        return;
    ring_.push(TraceRecord{net_.now(), pkt.id, branch_id, router,
                           units, TraceEvent::Lost});
}

void
TraceObserver::onDuplicate(const core::OpticalPacket &pkt,
                           NodeId router)
{
    ring_.push(TraceRecord{net_.now(), pkt.base.id, pkt.branchId,
                           router, 0, TraceEvent::Duplicate});
}

void
TraceObserver::onCycleEnd(Cycle cycle)
{
    if (sampleInterval_ && cycle % sampleInterval_ == 0) {
        ring_.push(TraceRecord{cycle, net_.inFlight(),
                               net_.bufferedPackets(), kInvalidNode, 0,
                               TraceEvent::Sample});
    }
}

MetricsObserver::MetricsObserver(const core::PhastlaneNetwork &net,
                                 MetricsRegistry &registry,
                                 const ObserveOptions &opts)
    : net_(net),
      sampleInterval_(opts.sampleInterval),
      heatmapInterval_(opts.heatmapInterval),
      accepts_(registry.counter("net.accepts")),
      deliveries_(registry.counter("net.deliveries")),
      launches_(registry.counter("optical.launches")),
      retransmissions_(registry.counter("optical.retransmissions")),
      drops_(registry.counter("optical.drops")),
      taps_(registry.counter("optical.taps")),
      passes_(registry.counter("optical.passes")),
      blocked_(registry.counter("buffer.blocked_receives")),
      interim_(registry.counter("buffer.interim_accepts")),
      dropSignalHops_(registry.counter("drop.signal_hops")),
      lostUnits_(registry.counter("fault.lost_units")),
      lostSignals_(registry.counter("fault.drop_signals_lost")),
      duplicates_(registry.counter("fault.duplicates_suppressed")),
      inFlight_(registry.gauge("net.in_flight")),
      buffered_(registry.gauge("buffer.packets")),
      nicQueued_(registry.gauge("nic.queued")),
      fairnessJainPpm_(registry.gauge("fairness.jain_ppm")),
      starvationMax_(registry.gauge("fairness.max_consec_losses")),
      latencyTotal_(registry.histogram("latency.accept_to_deliver")),
      latencyNetwork_(registry.histogram("latency.inject_to_deliver")),
      backoffAttempts_(registry.histogram("backoff.attempts")),
      occupancy_(registry.histogram("buffer.occupancy")),
      signalHops_(registry.histogram("drop.signal_hops"))
{
    perSourceDelivered_.assign(
        static_cast<size_t>(net.nodeCount()), 0);
    if (opts.perSourceCounters) {
        perSourceCounters_.reserve(perSourceDelivered_.size());
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            perSourceCounters_.push_back(&registry.counter(
                "fairness.src." + std::to_string(n) + ".delivered"));
        }
    }
    if (heatmapInterval_ > 0)
        heatmap_.emplace(net.mesh());
}

void
MetricsObserver::onAccept(const Packet &pkt, int branches,
                          int delivery_units)
{
    (void)pkt;
    (void)branches;
    (void)delivery_units;
    accepts_.inc();
}

void
MetricsObserver::onLaunch(const core::OpticalPacket &pkt,
                          NodeId router, Port out, int attempts)
{
    (void)pkt;
    (void)out;
    launches_.inc();
    if (heatmap_)
        heatmap_->addLaunch(router);
    if (attempts > 0) {
        retransmissions_.inc();
        backoffAttempts_.record(static_cast<uint64_t>(attempts));
    }
}

void
MetricsObserver::onPass(const core::OpticalPacket &pkt, NodeId router)
{
    (void)pkt;
    (void)router;
    passes_.inc();
}

void
MetricsObserver::onDeliver(const Delivery &d)
{
    deliveries_.inc();
    latencyTotal_.record(
        d.at >= d.acceptedAt ? d.at - d.acceptedAt : 0);
    latencyNetwork_.record(
        d.at >= d.injectedAt ? d.at - d.injectedAt : 0);
    const auto src = static_cast<size_t>(d.packet.src);
    if (src < perSourceDelivered_.size()) {
        ++perSourceDelivered_[src];
        if (!perSourceCounters_.empty())
            perSourceCounters_[src]->inc();
    }
}

void
MetricsObserver::onTap(const core::OpticalPacket &pkt, NodeId router)
{
    (void)pkt;
    (void)router;
    taps_.inc();
}

void
MetricsObserver::onBufferReceive(const core::OpticalPacket &pkt,
                                 NodeId router, Port queue,
                                 bool interim)
{
    (void)pkt;
    (void)queue;
    if (interim) {
        interim_.inc();
        if (heatmap_)
            heatmap_->addInterim(router);
    } else {
        blocked_.inc();
        if (heatmap_)
            heatmap_->addTurnLost(router);
    }
}

void
MetricsObserver::onDrop(const core::OpticalPacket &pkt, NodeId router,
                        NodeId launch_router, int signal_hops,
                        bool signal_lost)
{
    (void)pkt;
    (void)launch_router;
    drops_.inc();
    if (signal_lost) {
        lostSignals_.inc();
    } else {
        dropSignalHops_.inc(static_cast<uint64_t>(signal_hops));
        signalHops_.record(static_cast<uint64_t>(signal_hops));
    }
    if (heatmap_)
        heatmap_->addDrop(router);
}

void
MetricsObserver::onLost(const Packet &pkt, uint64_t branch_id,
                        NodeId router, int units, core::LostCause cause)
{
    (void)pkt;
    (void)branch_id;
    (void)router;
    (void)cause;
    if (units > 0)
        lostUnits_.inc(static_cast<uint64_t>(units));
}

void
MetricsObserver::onDuplicate(const core::OpticalPacket &pkt,
                             NodeId router)
{
    (void)pkt;
    (void)router;
    duplicates_.inc();
}

void
MetricsObserver::onCycleEnd(Cycle cycle)
{
    if (sampleInterval_ && cycle % sampleInterval_ == 0) {
        inFlight_.set(static_cast<int64_t>(net_.inFlight()));
        buffered_.set(static_cast<int64_t>(net_.bufferedPackets()));
        nicQueued_.set(static_cast<int64_t>(net_.nicQueuedPackets()));
        for (NodeId n = 0; n < net_.nodeCount(); ++n) {
            occupancy_.record(
                net_.routerBuffers(n).totalOccupancy());
        }
        // Jain index (sum x)^2 / (n * sum x^2) over per-source
        // delivered counts, scaled to ppm for the integral gauge.
        double sum = 0.0;
        double sumsq = 0.0;
        for (uint64_t c : perSourceDelivered_) {
            const auto x = static_cast<double>(c);
            sum += x;
            sumsq += x * x;
        }
        const double jain =
            sumsq == 0.0
                ? 1.0
                : sum * sum /
                      (static_cast<double>(
                           perSourceDelivered_.size()) *
                       sumsq);
        fairnessJainPpm_.set(static_cast<int64_t>(jain * 1e6));
        starvationMax_.set(
            static_cast<int64_t>(net_.maxStarvation()));
    }
    if (heatmap_ && cycle % heatmapInterval_ == 0) {
        heatmap_->snapshot(cycle, [this](NodeId n) {
            return net_.routerBuffers(n).totalOccupancy();
        });
    }
}

} // namespace phastlane::obs
