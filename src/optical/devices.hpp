/**
 * @file
 * Physical constants and packet-format geometry shared by the optical
 * analytic models (timing, peak power, area).
 *
 * All constants are documented with their calibration source: either a
 * value quoted directly in the Phastlane paper, or a reconstructed
 * value chosen so that the model reproduces a number the paper quotes
 * (see DESIGN.md section 6).
 */

#ifndef PHASTLANE_OPTICAL_DEVICES_HPP
#define PHASTLANE_OPTICAL_DEVICES_HPP

namespace phastlane::optical {

/**
 * Packet format and waveguide geometry of the Phastlane network
 * (paper Table 1 for the 64-wavelength configuration; other
 * wavelength counts follow the same 80-byte packet).
 */
struct PacketFormat {
    /** Payload + header bits carried on the data waveguides
     *  (80 bytes = 640 bits: 64B data, address, op type, source id,
     *  ECC and misc). */
    int payloadBits = 640;

    /** Router-control bits: 14 groups x 5 bits (Table 1: 70 bits). */
    int controlBits = 70;

    /** Control WDM degree (Table 1: 35-way on two waveguides). */
    int controlWdm = 35;

    /** Data waveguides needed for @p wavelengths -way payload WDM. */
    int payloadWaveguides(int wavelengths) const;

    /** Control waveguides (2 for every configuration we study). */
    int controlWaveguides() const;

    /** Total waveguides entering each router port. */
    int totalWaveguides(int wavelengths) const;
};

/**
 * Chip-level geometry for the 8x8 mesh at 16 nm.
 *
 * Node area follows the Kumar et al. methodology quoted in the paper:
 * one core + 64KB L1s + 2MB L2 + memory controller = 3.5 mm^2.
 */
struct ChipGeometry {
    int meshWidth = 8;
    int meshHeight = 8;

    /** Single-core node area, mm^2 (paper section 3.3). */
    double nodeAreaMm2 = 3.5;

    /** Dual-core (4.5) and quad-core (6.5) node areas, mm^2. */
    double dualNodeAreaMm2 = 4.5;
    double quadNodeAreaMm2 = 6.5;

    /** Die edge length, mm. */
    double dieEdgeMm() const;

    /** Center-to-center router pitch, mm (die edge / mesh width). */
    double nodePitchMm() const;
};

/**
 * Waveguide and resonator constants.
 */
struct WaveguideConstants {
    /** Propagation delay, ps per mm (paper: constant 10.45 ps/mm). */
    double propagationPsPerMm = 10.45;

    /**
     * Length added to an input port per WDM channel: one
     * resonator/receiver pair must sit on the waveguide per
     * wavelength. Reconstructed so the Fig 8 area sweet spot lands at
     * 64 wavelengths against the 3.5 mm^2 node budget. [mm per
     * wavelength]
     */
    double resonatorPitchMm = 0.012;

    /**
     * Width of one waveguide lane through the router internal
     * crossing region, including its two turn-resonator sites and
     * spacing. Reconstructed together with resonatorPitchMm (the
     * continuous-optimum wavelength count is
     * sqrt(payloadBits * lanePitch / resonatorPitch) ~ 63.2). [mm per
     * waveguide]
     */
    double waveguideLanePitchMm = 0.075;

    /**
     * Crossings inside one router experienced by the worst-case
     * wavelength: a fixed part (turn network, return path, local
     * ejection crossings) plus a per-waveguide part (crossing the
     * perpendicular bundle). Reconstructed so the Fig 7 anchor points
     * (64lambda/4hop/98% -> 32 W, 128lambda/5hop/98% -> 32 W,
     * 128lambda/4hop/98% -> 15 W) hold exactly.
     */
    double crossingsFixedPerRouter = 24.4;
    double crossingsPerWaveguide = 1.876;

    /**
     * Loss-independent optical input power floor: the power required
     * by all simultaneously active wavelengths at 100% crossing
     * efficiency, before the fixed 6 dB coupling/modulation loss.
     * Reconstructed from the Fig 7 anchors. [W]
     */
    double basePowerW = 0.1812;

    /** Fixed per-path loss: coupler, modulator insertion, bends,
     *  multicast taps. [dB] */
    double fixedPathLossDb = 6.0;
};

} // namespace phastlane::optical

#endif // PHASTLANE_OPTICAL_DEVICES_HPP
