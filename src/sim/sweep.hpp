/**
 * @file
 * Injection-rate sweeps (paper Fig 9): run a configuration at
 * increasing offered load on a synthetic pattern and record average
 * latency until the network saturates.
 */

#ifndef PHASTLANE_SIM_SWEEP_HPP
#define PHASTLANE_SIM_SWEEP_HPP

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/params.hpp"
#include "obs/metrics.hpp"
#include "sim/configs.hpp"
#include "traffic/synthetic.hpp"

namespace phastlane::sim {

/** One point of a latency/load curve. */
struct SweepPoint {
    double injectionRate = 0.0;
    traffic::SyntheticResult result;

    /** Per-point observability metrics; populated only when
     *  SweepConfig::collectMetrics is set and the configuration is a
     *  PhastlaneNetwork (empty otherwise). */
    obs::MetricsRegistry metrics;
};

/** Sweep parameters. */
struct SweepConfig {
    traffic::Pattern pattern = traffic::Pattern::UniformRandom;

    /** Hotspot tunables and adversarial source mix, forwarded to
     *  every point's SyntheticDriver. */
    traffic::PatternOptions patternOpts;
    traffic::AdversarialConfig adversarial;

    std::vector<double> rates;  ///< offered loads to test
    Cycle warmupCycles = 1000;
    Cycle measureCycles = 5000;
    uint64_t seed = 42;
    bool stopAtSaturation = true;

    /** Simulation threads for the sweep points: 0 = auto (PL_THREADS
     *  env, else hardware concurrency), 1 = serial. Results are
     *  bit-identical across thread counts (see sim/parallel.hpp). */
    int threads = 0;

    /** Collect per-point obs metrics (each shard records into its own
     *  registry; merge with mergedMetrics() for run totals). */
    bool collectMetrics = false;

    /** Batched lockstep backend (DESIGN.md §13): gang size for
     *  stepping many points' networks through one NetworkBatch when
     *  the sweep runs serially (resolved threads == 1) and the
     *  configuration is batch-eligible (no shards, no observers, FCFS
     *  wavefront). 0 = auto (MultiSim::kDefaultBatch), 1 = disable,
     *  > 1 = explicit gang size. Results are bit-identical to the
     *  serial path. */
    int batch = 0;
};

/** Default Fig 9 rate grid (packets/node/cycle). */
std::vector<double> defaultRateGrid();

/**
 * Apply the shared admission-control CLI flags (--admission
 * none|token|age, --admission-burst, --admission-period,
 * --admission-age) onto @p params. Returns true when any flag was
 * present; fatal() on bad values. Mirrors sim::applyFaultFlags.
 */
bool applyAdmissionFlags(const Config &args,
                         core::PhastlaneParams &params);

/** The flag names applyAdmissionFlags() consumes (for requireKnown). */
std::vector<std::string> admissionFlagNames();

/**
 * Apply the shared traffic-shaping CLI flags (--hotspot-fraction,
 * --hotspot-node, --mix none|elephant|tenant, --elephant-fraction,
 * --elephant-boost, --tenant-count, --tenant-boost) onto the pattern
 * options and adversarial mix. Returns true when any flag was
 * present; fatal() on bad values.
 */
bool applyTrafficFlags(const Config &args,
                       traffic::PatternOptions &opts,
                       traffic::AdversarialConfig &adv);

/** The flag names applyTrafficFlags() consumes (for requireKnown). */
std::vector<std::string> trafficFlagNames();

/**
 * Run the sweep for one configuration. Points after saturation are
 * omitted when stopAtSaturation is set.
 */
std::vector<SweepPoint> runSweep(const NetConfig &config,
                                 const SweepConfig &sweep);

/**
 * Saturation throughput: the highest accepted rate observed across
 * the sweep points (packets/node/cycle).
 */
double saturationThroughput(const std::vector<SweepPoint> &points);

/**
 * Merge every point's metrics registry in point (rate) order. Because
 * each shard records into its own registry and the merge order is
 * fixed, the result is identical at any thread count.
 */
obs::MetricsRegistry
mergedMetrics(const std::vector<SweepPoint> &points);

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_SWEEP_HPP
