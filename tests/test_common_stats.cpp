/**
 * @file
 * Statistics container tests: Welford moments against closed-form
 * references, merge associativity, histogram quantiles.
 */

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace phastlane {
namespace {

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, KnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStatTest, MergeMatchesConcatenation)
{
    Rng rng(3);
    RunningStat whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform() * 100.0;
        whole.add(v);
        (i < 400 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
    EXPECT_EQ(a.min(), whole.min());
    EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatTest, ResetClears)
{
    RunningStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, CountsAndOverflow)
{
    Histogram h(10.0, 5); // bins [0,10) .. [40,50), overflow >= 50
    h.add(0.0);
    h.add(9.999);
    h.add(10.0);
    h.add(49.0);
    h.add(50.0);
    h.add(1000.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.binValue(0), 2u);
    EXPECT_EQ(h.binValue(1), 1u);
    EXPECT_EQ(h.binValue(4), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, NegativeClampsToFirstBin)
{
    Histogram h(1.0, 4);
    h.add(-5.0);
    EXPECT_EQ(h.binValue(0), 1u);
}

TEST(HistogramTest, MedianOfUniformFill)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(HistogramTest, QuantileEmptyIsZero)
{
    Histogram h(1.0, 10);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileAllInOverflow)
{
    Histogram h(1.0, 10);
    h.add(100.0);
    h.add(200.0);
    // Overflow quantiles interpolate between the top edge (10) and
    // the largest observed sample (200) instead of collapsing to the
    // overflow region's lower edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 10.0 + 0.9 * (200.0 - 10.0));
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);
    EXPECT_DOUBLE_EQ(h.maxObserved(), 200.0);
}

TEST(HistogramTest, NonFiniteInputsLandInOverflow)
{
    // NaN and +inf used to hit an unguarded float->size_t cast
    // (undefined behavior); they must count in the overflow bin.
    Histogram h(1.0, 10);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::infinity());
    h.add(std::nextafter(1e300, 2e300));
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.overflow(), 3u);
    for (size_t i = 0; i < h.binCount(); ++i)
        EXPECT_EQ(h.binValue(i), 0u) << "bin " << i;
}

TEST(HistogramTest, TopEdgeGoesToOverflowNotLastBin)
{
    Histogram h(10.0, 5); // top edge 50
    h.add(std::nextafter(50.0, 0.0)); // just below: last bin
    h.add(50.0);                      // at the edge: overflow
    h.add(std::nextafter(50.0, 100.0));
    EXPECT_EQ(h.binValue(4), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, QuantileZeroIsLowerEdgeOfFirstOccupiedBin)
{
    Histogram h(10.0, 5);
    h.add(25.0);
    h.add(27.0);
    // q = 0 interpolates zero mass into bin 2, i.e. its lower edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 20.0);
}

TEST(HistogramTest, QuantileOneWithOverflowTarget)
{
    Histogram h(1.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(99.0); // overflow holds the q = 1 target
    // q = 1 lands at the end of the overflow mass: the max sample.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
    // But quantiles whose target lies inside regular bins still
    // resolve there.
    EXPECT_LT(h.quantile(0.3), 4.0);
}

TEST(HistogramTest, OverflowQuantileClampsToMaxObserved)
{
    // Regression: p99 of a distribution whose tail spills past the
    // top edge used to report the top edge itself, silently
    // under-reporting tail latency. It must now land inside
    // [top edge, max sample] and never exceed the max.
    Histogram h(10.0, 10); // top edge 100
    for (int i = 0; i < 98; ++i)
        h.add(5.0);
    h.add(350.0);
    h.add(700.0);
    const double p99 = h.quantile(0.99);
    EXPECT_GT(p99, 100.0);
    EXPECT_LE(p99, 700.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 700.0);
    EXPECT_DOUBLE_EQ(h.maxObserved(), 700.0);
}

TEST(HistogramTest, NonFiniteOverflowDoesNotStretchScale)
{
    // +inf counts as overflow mass but must not become the
    // interpolation endpoint; the largest finite sample bounds it.
    Histogram h(1.0, 4);
    h.add(std::numeric_limits<double>::infinity());
    h.add(9.0);
    EXPECT_DOUBLE_EQ(h.maxObserved(), 9.0);
    EXPECT_LE(h.quantile(1.0), 9.0);
}

TEST(HistogramTest, ResetClearsMaxObserved)
{
    Histogram h(1.0, 4);
    h.add(77.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.maxObserved(), 0.0);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

} // namespace
} // namespace phastlane
