/**
 * @file
 * SPLASH2 workload profile and stream generation tests.
 */

#include <gtest/gtest.h>

#include "traffic/splash.hpp"

namespace phastlane::traffic {
namespace {

TEST(Splash, SuiteHasTheTenPaperBenchmarks)
{
    const auto suite = splashSuite();
    ASSERT_EQ(suite.size(), 10u);
    const char *names[] = {"Barnes", "Cholesky", "FFT", "LU",
                           "Ocean", "Radix", "Raytrace",
                           "Water-NSquared", "Water-Spatial", "FMM"};
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(suite[i].name, names[i]);
}

TEST(Splash, Table3InputSets)
{
    EXPECT_EQ(splashProfile("Barnes").inputSet, "64 K particles");
    EXPECT_EQ(splashProfile("Cholesky").inputSet, "tk29.O");
    EXPECT_EQ(splashProfile("Ocean").inputSet, "2050x2050 grid");
    EXPECT_EQ(splashProfile("Radix").inputSet, "64 M integers");
    EXPECT_EQ(splashProfile("Raytrace").inputSet, "balls4");
}

TEST(Splash, ProfilesAreWellFormed)
{
    for (const auto &p : splashSuite()) {
        EXPECT_GT(p.txnsPerNode, 0) << p.name;
        EXPECT_GE(p.mshrLimit, 1) << p.name;
        EXPECT_GT(p.burstLenMean, 0.0) << p.name;
        EXPECT_GE(p.interBurstGapMean, 0.0) << p.name;
        EXPECT_GE(p.requestBroadcastFraction, 0.0) << p.name;
        EXPECT_LE(p.requestBroadcastFraction, 1.0) << p.name;
        EXPECT_LE(p.invalidateFraction + p.writebackFraction, 1.0)
            << p.name;
        EXPECT_GT(p.memoryLatency, p.cacheLatency) << p.name;
    }
}

TEST(Splash, StreamsAreDeterministic)
{
    const auto p = splashProfile("Barnes");
    const auto a = generateStreams(p, 64, 42);
    const auto b = generateStreams(p, 64, 42);
    ASSERT_EQ(a.size(), b.size());
    for (size_t n = 0; n < a.size(); ++n) {
        ASSERT_EQ(a[n].size(), b[n].size());
        for (size_t i = 0; i < a[n].size(); ++i) {
            EXPECT_EQ(a[n][i].type, b[n][i].type);
            EXPECT_EQ(a[n][i].peer, b[n][i].peer);
            EXPECT_EQ(a[n][i].thinkAfter, b[n][i].thinkAfter);
        }
    }
}

TEST(Splash, DifferentSeedsDiffer)
{
    const auto p = splashProfile("LU");
    const auto a = generateStreams(p, 64, 1);
    const auto b = generateStreams(p, 64, 2);
    int diffs = 0;
    for (size_t i = 0; i < a[0].size(); ++i)
        diffs += a[0][i].peer != b[0][i].peer ? 1 : 0;
    EXPECT_GT(diffs, 10);
}

TEST(Splash, StreamShape)
{
    const auto p = splashProfile("Ocean");
    const auto streams = generateStreams(p, 64, 7);
    ASSERT_EQ(streams.size(), 64u);
    for (NodeId n = 0; n < 64; ++n) {
        ASSERT_EQ(streams[static_cast<size_t>(n)].size(),
                  static_cast<size_t>(p.txnsPerNode));
        for (const Txn &t : streams[static_cast<size_t>(n)]) {
            EXPECT_NE(t.peer, n);
            EXPECT_GE(t.peer, 0);
            EXPECT_LT(t.peer, 64);
            if (t.type == TxnType::Request) {
                EXPECT_TRUE(t.serviceLatency == p.memoryLatency ||
                            t.serviceLatency == p.cacheLatency);
            }
        }
    }
}

TEST(Splash, MixFractionsApproximatelyHonored)
{
    SplashProfile p = splashProfile("Barnes");
    p.txnsPerNode = 2000;
    const auto streams = generateStreams(p, 64, 3);
    uint64_t inval = 0, wb = 0, total = 0;
    for (const auto &s : streams) {
        for (const Txn &t : s) {
            ++total;
            inval += t.type == TxnType::Invalidate ? 1 : 0;
            wb += t.type == TxnType::Writeback ? 1 : 0;
        }
    }
    EXPECT_NEAR(static_cast<double>(inval) / total,
                p.invalidateFraction, 0.01);
    EXPECT_NEAR(static_cast<double>(wb) / total,
                p.writebackFraction, 0.01);
}

TEST(Splash, ThinkTimeMatchesBurstModel)
{
    SplashProfile p = splashProfile("Raytrace");
    p.txnsPerNode = 5000;
    const auto streams = generateStreams(p, 4, 5);
    double total_think = 0.0;
    uint64_t count = 0;
    for (const auto &s : streams) {
        for (const Txn &t : s) {
            total_think += static_cast<double>(t.thinkAfter);
            ++count;
        }
    }
    // Expected mean think per txn: mostly intra-burst gaps plus one
    // inter-burst gap per burst.
    const double expected =
        (p.intraBurstGap * (p.burstLenMean - 1.0) +
         p.interBurstGapMean) / p.burstLenMean;
    EXPECT_NEAR(total_think / count, expected, expected * 0.25);
}

TEST(Splash, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH(splashProfile("NotABenchmark"), "unknown");
}

} // namespace
} // namespace phastlane::traffic
