/**
 * @file
 * End-to-end reliability layer over a lossy network (DESIGN.md §10.3).
 *
 * Under injected faults the optical network may silently lose delivery
 * units (missed receives, lost drop signals, dead routers). ReliableNic
 * restores exactly-once message semantics on top of it the way a real
 * protocol stack would:
 *
 *   - every message gets a sequence number, encoded into the wire
 *     packet id together with the attempt number;
 *   - the source tracks each outstanding message and retransmits after
 *     a deterministic exponential timeout, up to maxRetries times;
 *   - the receive side suppresses duplicates per (sequence, node), so
 *     a retransmitted broadcast re-delivering to already-served nodes
 *     is invisible to the application;
 *   - a message whose retries are exhausted is reported lost, with the
 *     missing delivery units accounted in stats().lostUnits.
 *
 * Everything is deterministic: timeouts are pure functions of the
 * accept cycle and attempt number, trackers are scanned in sequence
 * order, and no RNG is consumed, so a run is reproducible at any
 * thread count and bit-identical when fault rates are zero.
 */

#ifndef PHASTLANE_CORE_RELIABILITY_HPP
#define PHASTLANE_CORE_RELIABILITY_HPP

#include <map>
#include <set>
#include <vector>

#include "net/network.hpp"

namespace phastlane::core {

/** Tuning knobs of the reliability layer. */
struct ReliableNicOptions {
    /** First retransmit timeout, in cycles after the send. */
    Cycle baseTimeout = 256;

    /** Retransmits allowed per message before declaring it lost. */
    int maxRetries = 8;

    /** Exponential-backoff cap: timeout = baseTimeout << min(attempt,
     *  backoffShiftCap). */
    int backoffShiftCap = 6;
};

/** Cumulative statistics of one ReliableNic. */
struct ReliableNicStats {
    uint64_t sends = 0;          ///< messages accepted from the app
    uint64_t retransmits = 0;    ///< timeout-driven re-injections
    uint64_t timeouts = 0;       ///< deadline expiries observed
    uint64_t duplicates = 0;     ///< deliveries suppressed as repeats
    uint64_t late = 0;           ///< deliveries after tracker closure
    uint64_t completed = 0;      ///< messages fully delivered
    uint64_t expired = 0;        ///< messages that exhausted retries
    uint64_t lostUnits = 0;      ///< delivery units never served
};

/**
 * Source-side reliability wrapper around a Network. The caller drives
 * it instead of the raw network: send() then step() once per cycle;
 * deliveries() yields exactly-once deliveries carrying the original
 * packet ids.
 */
class ReliableNic
{
  public:
    explicit ReliableNic(Network &net,
                         const ReliableNicOptions &opts = {});

    /**
     * Offer a message. Returns false (network unchanged) when the
     * source NIC has no space. The packet id must not have the wire
     * flag bit (1 << 63) set.
     */
    bool send(const Packet &pkt);

    /** Advance the network one cycle, harvest deliveries, and run the
     *  retransmit timers. */
    void step();

    /** The non-network half of step(): harvest the cycle's deliveries
     *  and run the retransmit timers. For callers (MultiSim) that
     *  step the underlying network themselves; call once after every
     *  network step. */
    void afterNetStep();

    /** Deduplicated deliveries completed during the last step(),
     *  rewritten to the original packet ids. */
    const std::vector<Delivery> &deliveries() const
    {
        return deliveries_;
    }

    /** Delivery units still owed to the application. */
    uint64_t inFlight() const;

    /** True when no message is awaiting delivery or retransmit. */
    bool idle() const { return trackers_.empty(); }

    const ReliableNicStats &stats() const { return stats_; }
    Network &network() { return net_; }

    /** True when @p id is a wire id minted by a ReliableNic. */
    static bool isWireId(PacketId id) { return (id & kWireFlag) != 0; }

  private:
    static constexpr PacketId kWireFlag = PacketId{1} << 63;
    static constexpr int kAttemptBits = 8;

    /** Source-side state of one outstanding message. */
    struct Tracker {
        Packet original;
        Cycle sentAt = 0;    ///< cycle of the latest (re)send
        Cycle deadline = 0;  ///< next timeout check
        int attempt = 0;     ///< retransmits performed so far
        int expected = 0;    ///< total delivery units owed
        std::set<NodeId> delivered;
    };

    PacketId wireId(uint64_t seq, int attempt) const
    {
        return kWireFlag | (static_cast<PacketId>(seq) << kAttemptBits)
               | static_cast<PacketId>(attempt & 0xff);
    }
    static uint64_t seqOf(PacketId wire)
    {
        return (wire & ~kWireFlag) >> kAttemptBits;
    }

    Cycle timeoutFor(int attempt) const;
    void harvestDeliveries();
    void runTimers();

    Network &net_;
    ReliableNicOptions opts_;
    uint64_t nextSeq_ = 1;
    /** Ordered by sequence number so timer scans are deterministic. */
    std::map<uint64_t, Tracker> trackers_;
    std::vector<Delivery> deliveries_;
    ReliableNicStats stats_;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_RELIABILITY_HPP
