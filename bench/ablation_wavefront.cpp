/**
 * @file
 * Ablation: intra-cycle contention model of the optical wavefront
 * (DESIGN.md 3.1). The default sub-step-FCFS model finalizes port
 * claims as the wavefront advances; the idealized global-priority
 * model lets straight packets evict turning packets' claims
 * regardless of arrival order, as the combinational hardware
 * description in Section 2.1 suggests. Also sweeps the per-cycle hop
 * limit beyond the paper's three points.
 */

#include <memory>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"
#include "traffic/synthetic.hpp"

using namespace phastlane;
using namespace phastlane::core;
using namespace phastlane::traffic;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);

    // Part 1: wavefront contention model.
    {
        TextTable t({"rate", "model", "avg latency [cyc]",
                     "drops", "buffered"});
        for (double rate : {0.05, 0.15, 0.25}) {
            for (WavefrontModel model :
                 {WavefrontModel::SubstepFcfs,
                  WavefrontModel::BitplaneFcfs,
                  WavefrontModel::GlobalPriority}) {
                PhastlaneParams p;
                p.wavefront = model;
                p.seed = opts.seed;
                PhastlaneNetwork net(p);
                SyntheticConfig cfg;
                cfg.pattern = Pattern::UniformRandom;
                cfg.injectionRate = rate;
                cfg.warmupCycles = opts.quick ? 300 : 1000;
                cfg.measureCycles = opts.quick ? 1500 : 4000;
                cfg.seed = opts.seed;
                const auto r = SyntheticDriver(net, cfg).run();
                t.addRow({TextTable::num(rate, 2),
                          model == WavefrontModel::SubstepFcfs
                              ? "substep-FCFS"
                          : model == WavefrontModel::BitplaneFcfs
                              ? "bitplane-FCFS"
                              : "global-priority",
                          TextTable::num(r.avgLatency, 2),
                          TextTable::num(static_cast<int64_t>(
                              net.phastlaneCounters().drops)),
                          TextTable::num(static_cast<int64_t>(
                              net.phastlaneCounters()
                                  .blockedBuffered))});
            }
        }
        bench::emit(opts, "Ablation: intra-cycle wavefront model", t,
                    "wavefront");
    }

    // Part 2: hop-limit sweep on a coherence workload.
    {
        TextTable t({"max hops/cycle", "completion [cyc]",
                     "msg latency [cyc]", "drops"});
        auto prof = splashProfile("LU");
        prof.txnsPerNode = opts.quick ? 40 : 120;
        const auto streams = generateStreams(prof, 64, opts.seed);
        for (int hops : {1, 2, 3, 4, 5, 6, 8, 10, 14}) {
            PhastlaneParams p;
            p.maxHopsPerCycle = hops;
            p.seed = opts.seed;
            PhastlaneNetwork net(p);
            CoherenceDriver d(net, streams, prof.mshrLimit);
            const auto r = d.run();
            t.addRow({TextTable::num(int64_t{hops}),
                      TextTable::num(static_cast<int64_t>(
                          r.completionCycles)),
                      TextTable::num(r.avgMessageLatency, 1),
                      TextTable::num(static_cast<int64_t>(
                          net.phastlaneCounters().drops))});
        }
        bench::emit(opts,
                    "Ablation: per-cycle hop limit sweep (LU "
                    "workload; paper evaluates 4/5/8)",
                    t, "hops");
    }
    return 0;
}
