/**
 * @file
 * Multi-configuration experiment harness: run a set of named network
 * configurations over a set of coherence benchmarks (identical
 * pre-generated streams per benchmark) and collect completion,
 * latency, drop, and power results -- the machinery behind Fig 10 and
 * Fig 11, exposed as a reusable API.
 */

#ifndef PHASTLANE_SIM_EXPERIMENT_HPP
#define PHASTLANE_SIM_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "power/energy_params.hpp"
#include "sim/configs.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"

namespace phastlane::sim {

/** One (benchmark, configuration) run's results. */
struct BenchmarkRun {
    std::string benchmark;
    std::string config;
    traffic::CoherenceResult result;
    power::PowerBreakdown power;
    uint64_t drops = 0; ///< optical configurations only

    /** Per-cell observability metrics; populated only when
     *  ExperimentSpec::collectMetrics is set and the configuration is
     *  a PhastlaneNetwork (empty otherwise). */
    obs::MetricsRegistry metrics;
};

/** Experiment specification. */
struct ExperimentSpec {
    /** Configuration names (makeConfig()); the first entry is also
     *  the speedup baseline unless baseline overrides it. */
    std::vector<std::string> configs;

    /** Benchmarks to run. */
    std::vector<traffic::SplashProfile> benchmarks;

    /** Override txnsPerNode on every benchmark (0 = keep). */
    int txnsPerNode = 0;

    /** Speedup/power baseline configuration. */
    std::string baseline = "Electrical3";

    uint64_t seed = 12345;

    /** Simulation threads for the (benchmark x config) grid: 0 = auto
     *  (PL_THREADS env, else hardware concurrency), 1 = serial.
     *  Results are bit-identical across thread counts. */
    int threads = 0;

    /** Collect per-cell obs metrics (each grid cell records into its
     *  own registry; merge with mergedMetrics() for run totals). */
    bool collectMetrics = false;

    /** Batched lockstep backend (DESIGN.md §13): gang size for
     *  stepping the grid's batch-eligible cells through one
     *  NetworkBatch when the grid runs serially (resolved threads ==
     *  1). Ineligible cells (electrical configs, metrics collection)
     *  fall back per-instance. 0 = auto, 1 = disable, > 1 = explicit
     *  gang size. Results are bit-identical to the serial path. */
    int batch = 0;
};

/**
 * Runs the experiment; rows come back grouped by benchmark in
 * specification order.
 */
std::vector<BenchmarkRun> runExperiment(const ExperimentSpec &spec);

/** The run matching (benchmark, config); fatal() when absent. */
const BenchmarkRun &findRun(const std::vector<BenchmarkRun> &runs,
                            const std::string &benchmark,
                            const std::string &config);

/**
 * Completion-time speedup of @p config against the baseline on
 * @p benchmark (the Fig 10 metric).
 */
double speedupOf(const std::vector<BenchmarkRun> &runs,
                 const std::string &benchmark,
                 const std::string &config,
                 const std::string &baseline = "Electrical3");

/** Benchmark-by-configuration speedup table (Fig 10 layout). */
TextTable speedupTable(const ExperimentSpec &spec,
                       const std::vector<BenchmarkRun> &runs);

/** Benchmark-by-configuration total-power table (Fig 11 layout). */
TextTable powerTable(const ExperimentSpec &spec,
                     const std::vector<BenchmarkRun> &runs);

/**
 * Merge every run's metrics registry in grid order (benchmark-major,
 * configs in specification order). Deterministic at any thread count
 * because each cell records into its own registry.
 */
obs::MetricsRegistry
mergedMetrics(const std::vector<BenchmarkRun> &runs);

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_EXPERIMENT_HPP
