/**
 * @file
 * Figure 7: contour of the peak optical input power as a function of
 * crossing efficiency, wavelength count, and the per-cycle hop limit.
 * Paper anchors: (64l, 4hop, 98%) = 32 W, (128l, 5hop, 98%) = 32 W,
 * (128l, 4hop, 98%) = 15 W; 32 wavelengths need >= 99% efficiency or
 * a 2-3 hop limit.
 */

#include "bench_util.hpp"
#include "optical/power_model.hpp"

using namespace phastlane;
using namespace phastlane::optical;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    PeakPowerModel model;

    TextTable grid({"lambda", "hops", "eff 97% [W]", "eff 98% [W]",
                    "eff 99% [W]", "eff 99.5% [W]"});
    for (int wl : {32, 64, 128}) {
        for (int hops : {1, 2, 3, 4, 5, 6, 8}) {
            grid.addRow({TextTable::num(int64_t{wl}),
                         TextTable::num(int64_t{hops}),
                         TextTable::num(
                             model.peakPowerW(0.97, wl, hops), 1),
                         TextTable::num(
                             model.peakPowerW(0.98, wl, hops), 1),
                         TextTable::num(
                             model.peakPowerW(0.99, wl, hops), 1),
                         TextTable::num(
                             model.peakPowerW(0.995, wl, hops), 1)});
        }
    }
    bench::emit(opts, "Fig 7: peak optical power contour", grid,
                "grid");

    TextTable budget({"lambda", "eff", "max hops within 32 W"});
    for (int wl : {32, 64, 128}) {
        for (double eff : {0.97, 0.98, 0.99, 0.995}) {
            budget.addRow(
                {TextTable::num(int64_t{wl}), TextTable::num(eff, 3),
                 TextTable::num(int64_t{model.maxHopsWithinBudget(
                     eff, wl, 32.0)})});
        }
    }
    bench::emit(opts, "Fig 7 (derived): hop limit within a 32 W budget",
                budget, "budget");
    return 0;
}
