/**
 * @file
 * CACTI-lite: a small analytic SRAM buffer energy/leakage model of the
 * same functional form CACTI produces for small register-file-style
 * buffers -- access energy grows with the bitline length (~sqrt of the
 * entry count) and leakage grows linearly with the cell count.
 *
 * Calibrated so a 10-entry x 640-bit buffer costs ~0.04 pJ/bit per
 * access at 16 nm / 1.0 V, in line with published NoC buffer numbers
 * scaled to 16 nm.
 * Used for both the electrical baseline's VC buffers and Phastlane's
 * blocked-packet buffers, so buffer-size sensitivity (Optical4B32/B64,
 * Fig 10/11) is captured consistently.
 */

#ifndef PHASTLANE_POWER_CACTI_LITE_HPP
#define PHASTLANE_POWER_CACTI_LITE_HPP

namespace phastlane::power {

/**
 * Energy/leakage of one SRAM buffer.
 */
class BufferEnergyModel
{
  public:
    /**
     * @param entries Buffer depth in flits (use a representative
     *        finite depth for "infinite" buffers).
     * @param bits_per_entry Width in bits.
     */
    BufferEnergyModel(int entries, int bits_per_entry);

    /** Energy of one read access. [pJ] */
    double readPj() const;

    /** Energy of one write access. [pJ] */
    double writePj() const;

    /** Static leakage of the array. [W] */
    double leakageW() const;

    int entries() const { return entries_; }
    int bits() const { return bits_; }

  private:
    int entries_;
    int bits_;

    // 16 nm / 1.0 V calibration constants.
    static constexpr double kAccessBaseFjPerBit = 30.0;
    static constexpr double kAccessSlopeFjPerBit = 3.0; ///< x sqrt(E)
    static constexpr double kWriteFactor = 1.05;
    static constexpr double kLeakagePwPerBit = 100000.0;
};

} // namespace phastlane::power

#endif // PHASTLANE_POWER_CACTI_LITE_HPP
