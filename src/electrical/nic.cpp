#include "electrical/nic.hpp"

#include "common/log.hpp"

namespace phastlane::electrical {

ElectricalNic::ElectricalNic(NodeId self, const ElectricalParams &params)
    : self_(self),
      capacity_(static_cast<size_t>(params.nicQueueEntries))
{
}

void
ElectricalNic::accept(const Packet &pkt, Cycle now)
{
    PL_ASSERT(hasSpace(), "NIC overflow at node %d", self_);
    PL_ASSERT(pkt.src == self_, "packet source mismatch at NIC %d",
              self_);
    queue_.push_back(
        NicEntry{std::make_shared<const Packet>(pkt), now});
}

const NicEntry &
ElectricalNic::head() const
{
    PL_ASSERT(!queue_.empty(), "reading head of empty NIC queue");
    return queue_.front();
}

void
ElectricalNic::popHead()
{
    PL_ASSERT(!queue_.empty(), "popping empty NIC queue");
    queue_.pop_front();
}

} // namespace phastlane::electrical
