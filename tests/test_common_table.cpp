/**
 * @file
 * Text-table rendering and CSV output tests.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "common/table.hpp"

namespace phastlane {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    std::istringstream in(out);
    std::string l1, l2, l3, l4;
    std::getline(in, l1);
    std::getline(in, l2);
    std::getline(in, l3);
    std::getline(in, l4);
    EXPECT_NE(l1.find("name"), std::string::npos);
    EXPECT_NE(l1.find("value"), std::string::npos);
    EXPECT_EQ(l2.find_first_not_of('-'), std::string::npos);
    EXPECT_NE(l3.find("alpha"), std::string::npos);
    EXPECT_NE(l4.find("22"), std::string::npos);
}

TEST(TableTest, ColumnsAligned)
{
    TextTable t({"a", "b"});
    t.addRow({"xxxxxx", "1"});
    t.addRow({"y", "2"});
    const std::string out = t.render();
    std::istringstream in(out);
    std::string header, rule, r1, r2;
    std::getline(in, header);
    std::getline(in, rule);
    std::getline(in, r1);
    std::getline(in, r2);
    // The second column starts at the same offset in both rows.
    EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(TableTest, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.14159, 0), "3");
    EXPECT_EQ(TextTable::num(static_cast<int64_t>(-42)), "-42");
}

TEST(TableTest, ShortRowsPadAndLongRowsWiden)
{
    TextTable t({"a"});
    t.addRow({"1", "2", "3"});
    t.addRow({});
    EXPECT_EQ(t.rowCount(), 2u);
    const std::string out = t.render();
    EXPECT_NE(out.find('3'), std::string::npos);
}

TEST(TableTest, CsvRoundTrip)
{
    TextTable t({"k", "v"});
    t.addRow({"plain", "1"});
    t.addRow({"with,comma", "2"});
    t.addRow({"with\"quote", "3"});
    const std::string path = "/tmp/pl_table_test.csv";
    t.writeCsv(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "k,v");
    std::getline(in, line);
    EXPECT_EQ(line, "plain,1");
    std::getline(in, line);
    EXPECT_EQ(line, "\"with,comma\",2");
    std::getline(in, line);
    EXPECT_EQ(line, "\"with\"\"quote\",3");
    std::remove(path.c_str());
}

} // namespace
} // namespace phastlane
