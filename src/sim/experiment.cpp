#include "sim/experiment.hpp"

#include <memory>
#include <optional>

#include "common/log.hpp"
#include "core/network.hpp"
#include "obs/observe.hpp"
#include "sim/multisim.hpp"
#include "sim/parallel.hpp"

namespace phastlane::sim {

namespace {

/** One grid cell under batched execution: its own network and
 *  step-wise CoherenceDriver (DESIGN.md §13). */
class CoherenceJob final : public MultiSim::Job
{
  public:
    CoherenceJob(std::unique_ptr<Network> net,
                 const std::vector<std::vector<traffic::Txn>> &streams,
                 int mshr_limit)
        : net_(std::move(net)), driver_(*net_, streams, mshr_limit)
    {
        driver_.begin();
    }

    core::PhastlaneNetwork &network() override
    {
        return static_cast<core::PhastlaneNetwork &>(*net_);
    }
    bool done() override { return driver_.done(); }
    void preStep() override { driver_.preStep(); }
    void postStep() override { driver_.postStep(); }

    traffic::CoherenceResult finishResult()
    {
        return driver_.finish();
    }
    Network &rawNetwork() { return *net_; }

  private:
    std::unique_ptr<Network> net_;
    traffic::CoherenceDriver driver_;
};

} // namespace

std::vector<BenchmarkRun>
runExperiment(const ExperimentSpec &spec)
{
    if (spec.configs.empty() || spec.benchmarks.empty())
        fatal("experiment needs at least one config and benchmark");

    // Pre-generate every benchmark's streams once (shared read-only
    // across the grid), then dispatch the independent (benchmark,
    // config) cells across the pool. Cell i owns runs[i], so the
    // result vector comes back in the serial order: grouped by
    // benchmark, configs in specification order.
    const size_t nb = spec.benchmarks.size();
    const size_t nc = spec.configs.size();
    std::vector<traffic::SplashProfile> profiles(spec.benchmarks);
    std::vector<std::vector<std::vector<traffic::Txn>>> streams(nb);
    for (size_t b = 0; b < nb; ++b) {
        if (spec.txnsPerNode > 0)
            profiles[b].txnsPerNode = spec.txnsPerNode;
        streams[b] =
            traffic::generateStreams(profiles[b], 64, spec.seed);
    }

    std::vector<BenchmarkRun> runs(nb * nc);
    auto runCell = [&](size_t i) {
        const size_t b = i / nc;
        const size_t c = i % nc;
        const NetConfig cfg = makeConfig(spec.configs[c]);
        auto net = cfg.make(spec.seed);
        traffic::CoherenceDriver driver(*net, streams[b],
                                        profiles[b].mshrLimit);
        BenchmarkRun &run = runs[i];
        run.benchmark = profiles[b].name;
        run.config = spec.configs[c];
        // Each cell records into its own registry so parallel
        // shards never share observer state.
        std::optional<obs::MetricsObserver> observer;
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(
            net.get());
        if (spec.collectMetrics && pl) {
            observer.emplace(*pl, run.metrics);
            pl->setObserver(&*observer);
        }
        run.result = driver.run();
        if (pl && observer)
            pl->setObserver(nullptr);
        run.power = cfg.power(
            *net, run.result.completionCycles
                      ? run.result.completionCycles
                      : 1);
        if (pl)
            run.drops = pl->phastlaneCounters().drops;
    };

    // Serial grid: gang the batch-eligible cells' networks through
    // the lockstep backend; the rest (electrical configs, metrics
    // collection) run per-instance, exactly as before. Cells are
    // independent, so execution order is unobservable and the output
    // stays bit-identical to the plain serial grid.
    if (resolveThreadCount(spec.threads) <= 1 && spec.batch != 1 &&
        nb * nc > 1) {
        MultiSim ms(spec.batch);
        std::vector<std::unique_ptr<CoherenceJob>> jobs(nb * nc);
        for (size_t i = 0; i < nb * nc; ++i) {
            const size_t b = i / nc;
            const size_t c = i % nc;
            auto net = makeConfig(spec.configs[c]).make(spec.seed);
            if (spec.collectMetrics || !batchable(*net)) {
                runCell(i);
                continue;
            }
            runs[i].benchmark = profiles[b].name;
            runs[i].config = spec.configs[c];
            jobs[i] = std::make_unique<CoherenceJob>(
                std::move(net), streams[b], profiles[b].mshrLimit);
            ms.add(*jobs[i]);
        }
        ms.runAll();
        for (size_t i = 0; i < nb * nc; ++i) {
            if (!jobs[i])
                continue;
            const size_t c = i % nc;
            BenchmarkRun &run = runs[i];
            run.result = jobs[i]->finishResult();
            run.power = makeConfig(spec.configs[c])
                            .power(jobs[i]->rawNetwork(),
                                   run.result.completionCycles
                                       ? run.result.completionCycles
                                       : 1);
            run.drops = jobs[i]->network().phastlaneCounters().drops;
        }
        return runs;
    }

    parallelFor(nb * nc, runCell, spec.threads);
    return runs;
}

const BenchmarkRun &
findRun(const std::vector<BenchmarkRun> &runs,
        const std::string &benchmark, const std::string &config)
{
    for (const auto &r : runs) {
        if (r.benchmark == benchmark && r.config == config)
            return r;
    }
    fatal("no run for benchmark '%s' and config '%s'",
          benchmark.c_str(), config.c_str());
}

double
speedupOf(const std::vector<BenchmarkRun> &runs,
          const std::string &benchmark, const std::string &config,
          const std::string &baseline)
{
    const BenchmarkRun &base = findRun(runs, benchmark, baseline);
    const BenchmarkRun &run = findRun(runs, benchmark, config);
    PL_ASSERT(run.result.completionCycles > 0, "zero-length run");
    return static_cast<double>(base.result.completionCycles) /
           static_cast<double>(run.result.completionCycles);
}

TextTable
speedupTable(const ExperimentSpec &spec,
             const std::vector<BenchmarkRun> &runs)
{
    std::vector<std::string> headers = {"benchmark"};
    for (const auto &c : spec.configs)
        headers.push_back(c);
    TextTable t(std::move(headers));
    for (const auto &b : spec.benchmarks) {
        std::vector<std::string> row = {b.name};
        for (const auto &c : spec.configs) {
            row.push_back(TextTable::num(
                speedupOf(runs, b.name, c, spec.baseline), 2));
        }
        t.addRow(std::move(row));
    }
    return t;
}

obs::MetricsRegistry
mergedMetrics(const std::vector<BenchmarkRun> &runs)
{
    obs::MetricsRegistry total;
    for (const auto &run : runs)
        total.merge(run.metrics);
    return total;
}

TextTable
powerTable(const ExperimentSpec &spec,
           const std::vector<BenchmarkRun> &runs)
{
    std::vector<std::string> headers = {"benchmark"};
    for (const auto &c : spec.configs)
        headers.push_back(c + " [W]");
    TextTable t(std::move(headers));
    for (const auto &b : spec.benchmarks) {
        std::vector<std::string> row = {b.name};
        for (const auto &c : spec.configs) {
            row.push_back(TextTable::num(
                findRun(runs, b.name, c).power.totalW, 1));
        }
        t.addRow(std::move(row));
    }
    return t;
}

} // namespace phastlane::sim
