/**
 * @file
 * Property-style sweeps of the Phastlane network across hop limits,
 * buffer depths, and mesh shapes: exactly-once delivery, the
 * zero-load latency formula, and duplicate-free multicast
 * retransmission.
 */

#include <gtest/gtest.h>
#include <map>

#include "core/network.hpp"

namespace phastlane::core {
namespace {

class HopLimits : public ::testing::TestWithParam<int>
{
};

TEST_P(HopLimits, ZeroLoadUnicastLatencyFormula)
{
    // An uncontended unicast injected at cycle 0 is launched at cycle
    // 1 and crosses ceil(distance / H) segments, one per cycle.
    const int H = GetParam();
    PhastlaneParams p;
    p.maxHopsPerCycle = H;
    for (NodeId src : {0, 27, 63}) {
        for (NodeId dst = 0; dst < 64; dst += 5) {
            if (dst == src)
                continue;
            PhastlaneNetwork net(p);
            Packet pkt;
            pkt.id = 1;
            pkt.src = src;
            pkt.dst = dst;
            ASSERT_TRUE(net.inject(pkt));
            Cycle delivered = 0;
            while (net.inFlight() > 0) {
                net.step();
                for (const auto &d : net.deliveries())
                    delivered = d.at;
            }
            const int dist = net.mesh().hopDistance(src, dst);
            const Cycle expect =
                static_cast<Cycle>((dist + H - 1) / H);
            EXPECT_EQ(delivered, expect)
                << src << "->" << dst << " H=" << H;
        }
    }
}

TEST_P(HopLimits, BroadcastExactlyOnce)
{
    PhastlaneParams p;
    p.maxHopsPerCycle = GetParam();
    PhastlaneNetwork net(p);
    Packet b;
    b.id = 1;
    b.src = 27;
    b.broadcast = true;
    ASSERT_TRUE(net.inject(b));
    std::map<NodeId, int> seen;
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 10000) {
        net.step();
        for (const auto &d : net.deliveries())
            ++seen[d.node];
    }
    EXPECT_EQ(seen.size(), 63u);
    for (const auto &[node, count] : seen)
        EXPECT_EQ(count, 1) << "node " << node << " H=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Hops, HopLimits,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 14));

class BufferDepths : public ::testing::TestWithParam<int>
{
};

TEST_P(BufferDepths, StormyBroadcastsDeliverExactlyOnce)
{
    // Retransmissions after drops must never duplicate a delivery:
    // the resent multicast clears the Multicast bits of already
    // served nodes (Section 2.1.4).
    PhastlaneParams p;
    p.routerBufferEntries = GetParam();
    PhastlaneNetwork net(p);
    std::map<std::pair<PacketId, NodeId>, int> seen;
    PacketId id = 1;
    for (NodeId src : {0, 9, 27, 36, 54, 63})
        ASSERT_TRUE(net.inject([&] {
            Packet b;
            b.id = id++;
            b.src = src;
            b.broadcast = true;
            return b;
        }()));
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 200000) {
        net.step();
        for (const auto &d : net.deliveries())
            ++seen[{d.packet.id, d.node}];
    }
    ASSERT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(seen.size(), 6u * 63u);
    for (const auto &[key, count] : seen)
        EXPECT_EQ(count, 1)
            << "packet " << key.first << " node " << key.second;
}

INSTANTIATE_TEST_SUITE_P(Buffers, BufferDepths,
                         ::testing::Values(1, 2, 4, 10, 0));

class MeshShapes4 : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeshShapes4, BroadcastCoversEveryNode)
{
    const auto [w, h] = GetParam();
    PhastlaneParams p;
    p.meshWidth = w;
    p.meshHeight = h;
    PhastlaneNetwork net(p);
    Packet b;
    b.id = 1;
    b.src = 0;
    b.broadcast = true;
    ASSERT_TRUE(net.inject(b));
    uint64_t count = 0;
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 10000) {
        net.step();
        count += net.deliveries().size();
    }
    EXPECT_EQ(count, static_cast<uint64_t>(w * h - 1));
}

TEST_P(MeshShapes4, UnicastsAcrossTheWholeMesh)
{
    const auto [w, h] = GetParam();
    PhastlaneParams p;
    p.meshWidth = w;
    p.meshHeight = h;
    PhastlaneNetwork net(p);
    PacketId id = 1;
    uint64_t expected = 0;
    for (NodeId s = 0; s < w * h; ++s) {
        const NodeId d = static_cast<NodeId>((s + 1) % (w * h));
        if (d == s)
            continue;
        Packet pkt;
        pkt.id = id++;
        pkt.src = s;
        pkt.dst = d;
        ASSERT_TRUE(net.inject(pkt));
        ++expected;
    }
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 10000)
        net.step();
    EXPECT_EQ(net.counters().deliveries, expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshShapes4,
                         ::testing::Values(std::pair{2, 2},
                                           std::pair{4, 4},
                                           std::pair{4, 8},
                                           std::pair{8, 4},
                                           std::pair{8, 8}));

} // namespace
} // namespace phastlane::core
