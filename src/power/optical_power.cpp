#include "power/optical_power.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/types.hpp"

namespace phastlane::power {

namespace {

/** Representative depth used to size the "infinite" buffer arrays. */
constexpr int kInfiniteBufferDepth = 256;

int
effectiveDepth(const core::PhastlaneParams &p)
{
    return p.infiniteBuffers() ? kInfiniteBufferDepth
                               : p.routerBufferEntries;
}

} // namespace

OpticalPowerModel::OpticalPowerModel(
    const core::PhastlaneParams &net_params,
    const OpticalEnergyParams &energy, double freq_ghz)
    : netParams_(net_params),
      energy_(energy),
      freqHz_(freq_ghz * 1e9),
      buffer_(effectiveDepth(net_params), static_cast<int>(kFlitBits))
{
}

double
OpticalPowerModel::laserFjPerBit() const
{
    const double loss_db =
        energy_.avgLossDbPerHop *
        static_cast<double>(netParams_.maxHopsPerCycle);
    return energy_.laserBaseFjPerBit * std::pow(10.0, loss_db / 10.0);
}

PowerBreakdown
OpticalPowerModel::report(const core::OpticalEvents &ev,
                          uint64_t cycles) const
{
    PL_ASSERT(cycles > 0, "power report over zero cycles");
    const double seconds = static_cast<double>(cycles) / freqHz_;
    const auto pj_to_w = [&](double pj) {
        return pj * 1e-12 / seconds;
    };
    const auto fj_to_w = [&](double fj) {
        return fj * 1e-15 / seconds;
    };

    PowerBreakdown p;
    const double launches = static_cast<double>(ev.launches);
    p.laserW = fj_to_w(launches * laserFjPerBit() * kFlitBits);
    p.modulatorW =
        fj_to_w(launches * energy_.modulatorFjPerBit * kFlitBits);
    // Every full packet reception and every multicast tap drives a
    // bank of receivers; drop signals drive the 7-bit return path.
    p.receiverW = fj_to_w(
        static_cast<double>(ev.receives + ev.tapReceives) *
        energy_.receiverFjPerBit * kFlitBits);
    p.resonatorW = pj_to_w(
        static_cast<double>(ev.passTraversals) *
            energy_.resonatorSwitchPj +
        static_cast<double>(ev.dropSignalHops) *
            energy_.dropSignalPjPerHop);
    p.bufferDynamicW = pj_to_w(
        static_cast<double>(ev.bufferWrites) * buffer_.writePj() +
        static_cast<double>(ev.bufferReads) * buffer_.readPj());

    const int routers = netParams_.nodeCount();
    p.bufferLeakageW = buffer_.leakageW() *
                       static_cast<double>(kAllPorts) *
                       static_cast<double>(routers);
    p.staticW = (energy_.trimmingWPerRouter +
                 energy_.controlLeakageW) *
                static_cast<double>(routers);

    p.totalW = p.laserW + p.modulatorW + p.receiverW + p.resonatorW +
               p.bufferDynamicW + p.bufferLeakageW + p.staticW;
    return p;
}

} // namespace phastlane::power
