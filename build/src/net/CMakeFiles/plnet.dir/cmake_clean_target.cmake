file(REMOVE_RECURSE
  "libplnet.a"
)
