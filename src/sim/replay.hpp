/**
 * @file
 * Streaming trace replay (DESIGN.md §15): pull records on demand from
 * a traffic::TraceSource and drive a network with NIC backpressure,
 * never materializing the trace. ReplayCore is the cycle engine shared
 * by replayTraceStream() and the simulation server (sim/server.hpp) --
 * both must inject identical sequences so a served run byte-matches an
 * offline replay of the same records.
 */

#ifndef PHASTLANE_SIM_REPLAY_HPP
#define PHASTLANE_SIM_REPLAY_HPP

#include <deque>
#include <string>

#include "common/stats.hpp"
#include "net/network.hpp"
#include "traffic/trace.hpp"

namespace phastlane::sim {

/** Knobs for streaming replay. */
struct ReplayOptions {
    /** Give up after this many cycles (ReplayStats::hitCycleLimit). */
    Cycle maxCycles = 10000000;

    /**
     * Released-but-not-injected window: records due at the current
     * cycle move into the pending queue only while it holds fewer
     * than this many packets, so resident memory stays O(maxPending)
     * however far the NICs fall behind the trace. A record held back
     * by a full window gets its createdAt (latency base) stamped at
     * its actual release cycle, not its trace cycle.
     */
    size_t maxPending = 4096;
};

/** Results of a streaming replay. */
struct ReplayStats {
    Cycle completionCycle = 0;
    uint64_t messages = 0;   ///< records consumed from the source
    uint64_t deliveries = 0;
    double avgLatency = 0.0; ///< release -> delivery
    bool hitCycleLimit = false;
    uint64_t outstanding = 0; ///< in flight + queued when limited
};

/**
 * The shared per-cycle replay engine: a bounded pending queue of
 * released packets, head-of-line injection against NIC backpressure,
 * and delivery/latency accounting. Callers own the loop (the
 * streaming replayer pulls from a TraceSource; the server releases
 * watermark-gated client records) but every network interaction goes
 * through here so the two stay bit-identical.
 */
class ReplayCore
{
  public:
    ReplayCore(Network &net, size_t max_pending);

    /** True while the release window has room. */
    bool windowHasSpace() const
    {
        return pending_.size() < maxPending_;
    }

    /** Release @p r: validate against the network's node range
     *  (fatal on violation) and queue it with createdAt = now. */
    void release(const traffic::TraceRecord &r);

    /** Offer pending packets head-of-line until a NIC refuses. */
    void injectPending();

    /** Advance one cycle and harvest deliveries into the stats. */
    void stepAndHarvest();

    /** No released packet awaits injection or delivery. */
    bool quiescent() const
    {
        return pending_.empty() && net_.inFlight() == 0;
    }

    Network &net() { return net_; }
    uint64_t released() const { return released_; }
    uint64_t deliveries() const { return deliveries_; }
    size_t pendingCount() const { return pending_.size(); }

    /** Stats snapshot for the loop run so far. */
    ReplayStats stats() const;

  private:
    Network &net_;
    size_t maxPending_;
    std::deque<Packet> pending_;
    RunningStat latency_;
    uint64_t released_ = 0;
    uint64_t deliveries_ = 0;
    uint64_t nextId_ = 1;
};

/**
 * Replay records pulled on demand from @p src (which must yield
 * cycle-sorted records): each is released at its cycle -- or as soon
 * afterwards as the release window and NIC allow -- and the run
 * continues until the source drains and every delivery completes, or
 * opts.maxCycles elapse. Memory is O(opts.maxPending) regardless of
 * trace length.
 */
ReplayStats replayTraceStream(Network &net, traffic::TraceSource &src,
                              const ReplayOptions &opts = {});

/**
 * Canonical one-line-per-field report of a replay, used verbatim by
 * both the simulation server's RESULT message and the offline
 * `netsim_serve --replay` mode so served and offline runs can be
 * byte-diffed.
 */
std::string formatReplayReport(const ReplayStats &stats,
                               const Network &net);

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_REPLAY_HPP
