/**
 * @file
 * Future-work study (paper Section 5/7): "Future work will investigate
 * more sophisticated buffer management schemes to reduce buffering
 * requirements" and "alternatives to ... simple rotating priority
 * arbitration of the electrical buffers."
 *
 * Compares, on the drop-bound Ocean/FMM workloads:
 *   - partitioned per-port buffers (paper) vs one shared per-router
 *     pool of the same total size;
 *   - rotating-priority vs globally oldest-first launch arbitration.
 */

#include <memory>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"

using namespace phastlane;
using namespace phastlane::core;
using namespace phastlane::traffic;

namespace {

struct Variant {
    const char *name;
    int buffers;
    bool shared;
    BufferArbitration arb;
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);

    const Variant variants[] = {
        {"Optical4 (paper)", 10, false,
         BufferArbitration::RotatingPriority},
        {"Optical4 shared pool", 10, true,
         BufferArbitration::RotatingPriority},
        {"Optical4 oldest-first", 10, false,
         BufferArbitration::OldestFirst},
        {"Optical4 shared+oldest", 10, true,
         BufferArbitration::OldestFirst},
        {"Optical4B32 (paper)", 32, false,
         BufferArbitration::RotatingPriority},
    };

    TextTable t({"benchmark", "variant", "completion [cyc]",
                 "vs paper", "drops", "msg latency [cyc]"});
    for (const char *bench : {"Ocean", "FMM", "Barnes"}) {
        auto prof = splashProfile(bench);
        prof.txnsPerNode = opts.quick ? 50 : 150;
        const auto streams = generateStreams(prof, 64, opts.seed);
        double base = 0.0;
        for (const Variant &v : variants) {
            PhastlaneParams p;
            p.routerBufferEntries = v.buffers;
            p.sharedBufferPool = v.shared;
            p.bufferArbitration = v.arb;
            p.seed = opts.seed;
            PhastlaneNetwork net(p);
            CoherenceDriver d(net, streams, prof.mshrLimit);
            const CoherenceResult r = d.run();
            if (base == 0.0)
                base = static_cast<double>(r.completionCycles);
            t.addRow({bench, v.name,
                      TextTable::num(static_cast<int64_t>(
                          r.completionCycles)),
                      TextTable::num(
                          base / static_cast<double>(
                                     r.completionCycles), 2) + "x",
                      TextTable::num(static_cast<int64_t>(
                          net.phastlaneCounters().drops)),
                      TextTable::num(r.avgMessageLatency, 1)});
        }
        std::printf("[%s done]\n", bench);
        std::fflush(stdout);
    }
    bench::emit(opts,
                "Future work: buffer management and buffer "
                "arbitration alternatives",
                t);
    return 0;
}
