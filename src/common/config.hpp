/**
 * @file
 * Simple typed key/value configuration store with command-line parsing,
 * used by the bench harnesses and examples.
 *
 * Accepted forms: "--key value", "--key=value", "key=value", and bare
 * "--flag" (stored as "true").
 */

#ifndef PHASTLANE_COMMON_CONFIG_HPP
#define PHASTLANE_COMMON_CONFIG_HPP

#include <map>
#include <string>
#include <vector>

namespace phastlane {

class Config
{
  public:
    Config() = default;

    /** Parse argv-style arguments; unknown keys are accepted. */
    static Config fromArgs(int argc, char **argv);

    /** Set/overwrite a value. */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /** String value or @p def when absent. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Integer value or @p def; fatal() on malformed input. */
    int64_t getInt(const std::string &key, int64_t def) const;

    /** Floating value or @p def; fatal() on malformed input. */
    double getDouble(const std::string &key, double def) const;

    /** Boolean value ("1/true/yes/on") or @p def. */
    bool getBool(const std::string &key, bool def) const;

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /** Keys present here but not in @p allowed, sorted. */
    std::vector<std::string>
    unknownKeys(const std::vector<std::string> &allowed) const;

    /**
     * fatal() (non-zero exit) listing every key not in @p allowed;
     * no-op when all keys are known. CLIs use this so a mistyped flag
     * fails loudly instead of being silently ignored.
     */
    void requireKnown(const std::vector<std::string> &allowed) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace phastlane

#endif // PHASTLANE_COMMON_CONFIG_HPP
