/**
 * @file
 * Runtime power model of the Phastlane network: laser/modulator/
 * receiver dynamic energies per optical event, electrical energies for
 * the blocked-packet buffers, and static trimming/control power.
 */

#ifndef PHASTLANE_POWER_OPTICAL_POWER_HPP
#define PHASTLANE_POWER_OPTICAL_POWER_HPP

#include "core/events.hpp"
#include "core/params.hpp"
#include "power/cacti_lite.hpp"
#include "power/energy_params.hpp"

namespace phastlane::power {

/**
 * Converts OpticalEvents into a PowerBreakdown.
 */
class OpticalPowerModel
{
  public:
    OpticalPowerModel(const core::PhastlaneParams &net_params,
                      const OpticalEnergyParams &energy = {},
                      double freq_ghz = 4.0);

    /** Average power over @p cycles cycles of activity. */
    PowerBreakdown report(const core::OpticalEvents &ev,
                          uint64_t cycles) const;

    /** Laser energy per transmitted bit for this configuration's
     *  provisioned hop limit. [fJ/bit] */
    double laserFjPerBit() const;

    const BufferEnergyModel &bufferModel() const { return buffer_; }

  private:
    core::PhastlaneParams netParams_;
    OpticalEnergyParams energy_;
    double freqHz_;
    BufferEnergyModel buffer_;
};

} // namespace phastlane::power

#endif // PHASTLANE_POWER_OPTICAL_POWER_HPP
