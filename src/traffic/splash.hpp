/**
 * @file
 * SPLASH2-like workload profiles (paper Table 3 / Section 4).
 *
 * The paper drives its evaluation from SESC-generated SPLASH2 traces
 * of a 64-core snoopy system (all L2 miss requests and invalidates
 * broadcast; data responses unicast from cache-line-interleaved homes).
 * We do not have SESC or its traces, so each benchmark is modeled as a
 * per-node stream of coherence transactions with benchmark-specific
 * intensity, burstiness, sharing mix and memory-level parallelism,
 * pre-generated deterministically from a seed so both networks replay
 * the identical stream (DESIGN.md 3.3). The profile parameters are
 * calibrated so the qualitative Fig 10/11 behaviours hold: Ocean and
 * FMM are drop/buffer-sensitive under Phastlane's 10-entry buffers,
 * the low-MLP benchmarks are latency-bound and gain the most, and the
 * remaining benchmarks sit in between.
 */

#ifndef PHASTLANE_TRAFFIC_SPLASH_HPP
#define PHASTLANE_TRAFFIC_SPLASH_HPP

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace phastlane::traffic {

/** Kind of one coherence transaction. */
enum class TxnType : uint8_t {
    Request,    ///< broadcast L2 miss request + unicast data response
    Invalidate, ///< broadcast invalidate, no response
    Writeback,  ///< unicast dirty eviction, no response
};

/** One pre-generated transaction of a node's stream. */
struct Txn {
    TxnType type = TxnType::Request;

    /** Requests: snoop broadcast (true) or a directed fetch to the
     *  line's home (false). */
    bool broadcastReq = true;

    /** Responding home node (Request) or writeback target. */
    NodeId peer = kInvalidNode;

    /** Home service latency before the response (Request only). */
    Cycle serviceLatency = 0;

    /** Think time after issuing this transaction. */
    Cycle thinkAfter = 0;
};

/**
 * One benchmark profile (name and input set from Table 3; behavioral
 * parameters reconstructed, see file comment).
 */
struct SplashProfile {
    std::string name;
    std::string inputSet;

    /** Transactions per node (scaled for simulation time). */
    int txnsPerNode = 300;

    /** Outstanding-request limit per node (MSHRs). */
    int mshrLimit = 8;

    /** Mean burst length (geometric). */
    double burstLenMean = 4.0;

    /** Gap between transactions inside a burst. [cycles] */
    double intraBurstGap = 1.0;

    /** Mean gap between bursts (exponential). [cycles] */
    double interBurstGapMean = 150.0;

    /**
     * Fraction of request transactions sent as snoop broadcasts; the
     * rest are directed fetches to the line's home node (re-fetches
     * with a known owner, page walks, DMA -- present in real traces
     * alongside snoops).
     */
    double requestBroadcastFraction = 1.0;

    /** Fraction of transactions that are invalidate broadcasts. */
    double invalidateFraction = 0.1;

    /** Fraction that are unicast writebacks. */
    double writebackFraction = 0.2;

    /** Fraction of requests served by memory (80 cycles) rather than
     *  a remote cache (20 cycles), Table 4. */
    double memoryFraction = 0.5;

    Cycle memoryLatency = 80;
    Cycle cacheLatency = 20;
};

/** The ten SPLASH2 benchmarks of Table 3, in the paper's order. */
std::vector<SplashProfile> splashSuite();

/** Look up one benchmark by (case-sensitive) name; fatal() if absent. */
SplashProfile splashProfile(const std::string &name);

/**
 * Deterministically pre-generate every node's transaction stream for
 * @p profile on an @p node_count -node system. Independent of any
 * network state, so both simulators replay the same workload.
 */
std::vector<std::vector<Txn>> generateStreams(
    const SplashProfile &profile, int node_count, uint64_t seed);

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_SPLASH_HPP
