/**
 * @file
 * Scalar-vs-sharded differential campaign (DESIGN.md §12): the
 * topology-parallel sharded step() must be bit-identical to the
 * scalar engine — same per-packet delivery cycles, same event
 * counters, same per-port claim tallies — across mesh shapes
 * (square, non-square, non-power-of-two, multi-word), shard grids,
 * thread counts, wavefront models, fault injection and exponential
 * backoff. PL_CHECK_LONG=1 widens the campaign (more seeds and the
 * 32x32 mega-mesh soak).
 */

#include <gtest/gtest.h>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/observer.hpp"

namespace phastlane::core {
namespace {

bool
longCampaign()
{
    const char *v = std::getenv("PL_CHECK_LONG");
    return v && v[0] == '1';
}

/** Everything the campaign pins: per-(packet, node) delivery cycles,
 *  the full counter set, and the cumulative port-claim tallies. */
struct RunResult {
    std::map<std::pair<PacketId, NodeId>, Cycle> delivered;
    OpticalEvents events;
    PhastlaneCounters pl;
    NetworkCounters counters;
    std::vector<uint64_t> portClaims;
    uint64_t inFlight = 0;
    bool drained = false;
};

/** Mixed unicast/broadcast workload, deterministic per (mesh, seed):
 *  identical injection streams for every engine configuration. */
RunResult
runWorkload(const PhastlaneParams &p, int cycles, int seed,
            StepObserver *observer = nullptr)
{
    PhastlaneNetwork net(p);
    if (observer)
        net.setObserver(observer);
    Rng rng(500 + seed);
    RunResult r;
    PacketId id = 1;
    auto collect = [&] {
        for (const auto &d : net.deliveries())
            r.delivered[{d.packet.id, d.node}] = d.at;
    };
    for (int cyc = 0; cyc < cycles; ++cyc) {
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            if (!rng.bernoulli(0.10))
                continue;
            Packet pkt;
            pkt.id = id++;
            pkt.src = n;
            if (rng.bernoulli(0.06)) {
                pkt.broadcast = true;
            } else {
                NodeId d = static_cast<NodeId>(
                    rng.uniformInt(0, net.nodeCount() - 1));
                pkt.dst = d == n ? (d + 1) % net.nodeCount() : d;
            }
            net.inject(pkt);
        }
        net.step();
        collect();
    }
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 200000) {
        net.step();
        collect();
    }
    r.events = net.events();
    r.pl = net.phastlaneCounters();
    r.counters = net.counters();
    r.portClaims = net.portClaimCounts();
    r.inFlight = net.inFlight();
    r.drained = net.inFlight() == 0;
    return r;
}

void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.delivered, b.delivered) << label;
    EXPECT_EQ(a.events.launches, b.events.launches) << label;
    EXPECT_EQ(a.events.passTraversals, b.events.passTraversals)
        << label;
    EXPECT_EQ(a.events.receives, b.events.receives) << label;
    EXPECT_EQ(a.events.tapReceives, b.events.tapReceives) << label;
    EXPECT_EQ(a.events.bufferWrites, b.events.bufferWrites) << label;
    EXPECT_EQ(a.events.bufferReads, b.events.bufferReads) << label;
    EXPECT_EQ(a.events.drops, b.events.drops) << label;
    EXPECT_EQ(a.events.dropSignalHops, b.events.dropSignalHops)
        << label;
    EXPECT_EQ(a.events.retransmissions, b.events.retransmissions)
        << label;
    EXPECT_EQ(a.events.routerCycles, b.events.routerCycles) << label;
    EXPECT_EQ(a.events.lostUnits, b.events.lostUnits) << label;
    EXPECT_EQ(a.events.dropSignalsLost, b.events.dropSignalsLost)
        << label;
    EXPECT_EQ(a.events.faultMisTurns, b.events.faultMisTurns)
        << label;
    EXPECT_EQ(a.events.faultMissedReceives,
              b.events.faultMissedReceives)
        << label;
    EXPECT_EQ(a.events.faultCorruptions, b.events.faultCorruptions)
        << label;
    EXPECT_EQ(a.events.faultDeadArrivals, b.events.faultDeadArrivals)
        << label;
    EXPECT_EQ(a.events.duplicatesSuppressed,
              b.events.duplicatesSuppressed)
        << label;
    EXPECT_EQ(a.pl.drops, b.pl.drops) << label;
    EXPECT_EQ(a.pl.retransmissions, b.pl.retransmissions) << label;
    EXPECT_EQ(a.pl.blockedBuffered, b.pl.blockedBuffered) << label;
    EXPECT_EQ(a.pl.interimAccepts, b.pl.interimAccepts) << label;
    EXPECT_EQ(a.pl.launches, b.pl.launches) << label;
    EXPECT_EQ(a.counters.messagesAccepted, b.counters.messagesAccepted)
        << label;
    EXPECT_EQ(a.counters.packetsInjected, b.counters.packetsInjected)
        << label;
    EXPECT_EQ(a.counters.deliveries, b.counters.deliveries) << label;
    EXPECT_EQ(a.portClaims, b.portClaims) << label;
    EXPECT_EQ(a.inFlight, b.inFlight) << label;
}

struct ShardSpec {
    int cols;
    int rows;
};

/**
 * The core campaign: for each mesh shape, pin the scalar result and
 * require every shard grid to reproduce it bit-for-bit.
 */
TEST(ShardedDifferential, MatchesScalarAcrossMeshesAndGrids)
{
    struct MeshCase {
        int w, h, cycles;
    };
    std::vector<MeshCase> meshes = {
        {4, 4, 120}, {8, 8, 120}, {9, 7, 120}, {16, 16, 80}};
    if (longCampaign())
        meshes.push_back({32, 32, 60});
    const ShardSpec grids[] = {{2, 1}, {2, 2}, {4, 4}};
    const int seeds = longCampaign() ? 4 : 2;
    for (const auto &mc : meshes) {
        for (int seed = 1; seed <= seeds; ++seed) {
            PhastlaneParams base;
            base.meshWidth = mc.w;
            base.meshHeight = mc.h;
            base.routerBufferEntries = 4;
            base.seed = 1000 + static_cast<uint64_t>(seed);
            const RunResult scalar =
                runWorkload(base, mc.cycles, seed);
            EXPECT_TRUE(scalar.drained)
                << mc.w << "x" << mc.h << " seed " << seed;
            for (const ShardSpec &g : grids) {
                PhastlaneParams p = base;
                p.shardCols = g.cols;
                p.shardRows = g.rows;
                p.shardThreads = 4;
                const RunResult sharded =
                    runWorkload(p, mc.cycles, seed);
                expectIdentical(
                    scalar, sharded,
                    std::to_string(mc.w) + "x" +
                        std::to_string(mc.h) + " shards " +
                        std::to_string(g.cols) + "x" +
                        std::to_string(g.rows) + " seed " +
                        std::to_string(seed));
            }
        }
    }
}

/** The 32x32 mega-mesh always gets at least one short sharded pin
 *  (the long campaign above runs the full grid sweep). */
TEST(ShardedDifferential, MegaMesh32x32ShortPin)
{
    PhastlaneParams base;
    base.meshWidth = 32;
    base.meshHeight = 32;
    base.routerBufferEntries = 4;
    base.seed = 2024;
    const RunResult scalar = runWorkload(base, 24, 9);
    PhastlaneParams p = base;
    p.shardCols = 4;
    p.shardRows = 4;
    p.shardThreads = 0; // PL_THREADS / hardware default
    const RunResult sharded = runWorkload(p, 24, 9);
    expectIdentical(scalar, sharded, "32x32 shards 4x4");
}

/** Worker-thread count must never affect results (only wall time). */
TEST(ShardedDifferential, ThreadCountInvariance)
{
    PhastlaneParams base;
    base.meshWidth = 8;
    base.meshHeight = 8;
    base.routerBufferEntries = 4;
    base.seed = 77;
    base.shardCols = 2;
    base.shardRows = 2;
    RunResult first;
    bool have_first = false;
    for (int threads : {1, 2, 8}) {
        PhastlaneParams p = base;
        p.shardThreads = threads;
        const RunResult r = runWorkload(p, 100, 5);
        if (!have_first) {
            first = r;
            have_first = true;
            continue;
        }
        expectIdentical(first, r,
                        "threads=" + std::to_string(threads));
    }
}

/** Sharding composes with fault injection (stateless hashes) and
 *  exponential backoff (RNG order pinned by the effect merge). */
TEST(ShardedDifferential, FaultsAndBackoffStayInLockstep)
{
    PhastlaneParams base;
    base.meshWidth = 9;
    base.meshHeight = 7;
    base.routerBufferEntries = 2; // force drops and retries
    base.exponentialBackoff = true;
    base.backoffBase = 1;
    base.seed = 4242;
    base.faults.misTurnRate = 0.02;
    base.faults.missedReceiveRate = 0.01;
    base.faults.dropSignalLossRate = 0.01;
    base.faults.dropperIdCorruptRate = 0.05;
    base.faults.routerFailRate = 0.02;
    base.faults.faultSeed = 99;
    const int seeds = longCampaign() ? 4 : 2;
    for (int seed = 1; seed <= seeds; ++seed) {
        PhastlaneParams b = base;
        b.seed = 4242 + static_cast<uint64_t>(seed);
        const RunResult scalar = runWorkload(b, 120, seed);
        for (const ShardSpec &g : {ShardSpec{2, 2}, ShardSpec{3, 2}}) {
            PhastlaneParams p = b;
            p.shardCols = g.cols;
            p.shardRows = g.rows;
            p.shardThreads = 4;
            const RunResult sharded = runWorkload(p, 120, seed);
            expectIdentical(scalar, sharded,
                            "faults shards " +
                                std::to_string(g.cols) + "x" +
                                std::to_string(g.rows) + " seed " +
                                std::to_string(seed));
        }
    }
}

/** The scalar SubstepFcfs wavefront shares the sharded engine (the
 *  two FCFS models are bit-identical by contract). */
TEST(ShardedDifferential, SubstepFcfsWavefrontToo)
{
    PhastlaneParams base;
    base.meshWidth = 8;
    base.meshHeight = 8;
    base.routerBufferEntries = 4;
    base.wavefront = WavefrontModel::SubstepFcfs;
    base.seed = 31;
    const RunResult scalar = runWorkload(base, 100, 3);
    PhastlaneParams p = base;
    p.shardCols = 2;
    p.shardRows = 2;
    p.shardThreads = 2;
    const RunResult sharded = runWorkload(p, 100, 3);
    expectIdentical(scalar, sharded, "fcfs wavefront");
}

/** RoundRobin optical arbitration takes the rotating-priority branch
 *  of the claim resolution; pin it through the sharded path too. */
TEST(ShardedDifferential, RoundRobinArbitration)
{
    PhastlaneParams base;
    base.meshWidth = 9;
    base.meshHeight = 7;
    base.routerBufferEntries = 4;
    base.opticalArbitration = OpticalArbitration::RoundRobin;
    base.seed = 55;
    const RunResult scalar = runWorkload(base, 100, 6);
    PhastlaneParams p = base;
    p.shardCols = 3;
    p.shardRows = 2;
    p.shardThreads = 4;
    const RunResult sharded = runWorkload(p, 100, 6);
    expectIdentical(scalar, sharded, "round robin");
}

/** An attached observer falls back to the scalar engine — results
 *  are unchanged and the observer sees the exact scalar stream. */
TEST(ShardedDifferential, ObserverForcesScalarFallback)
{
    struct CountingObserver : StepObserver {
        uint64_t cycles = 0;
        uint64_t delivers = 0;
        void onCycleBegin(Cycle) override { ++cycles; }
        void onDeliver(const Delivery &) override { ++delivers; }
    };
    PhastlaneParams base;
    base.meshWidth = 8;
    base.meshHeight = 8;
    base.routerBufferEntries = 4;
    base.seed = 11;
    const RunResult scalar = runWorkload(base, 80, 2);
    PhastlaneParams p = base;
    p.shardCols = 2;
    p.shardRows = 2;
    CountingObserver obs;
    const RunResult observed = runWorkload(p, 80, 2, &obs);
    expectIdentical(scalar, observed, "observer fallback");
    EXPECT_GT(obs.cycles, 0u);
    EXPECT_EQ(obs.delivers, observed.counters.deliveries);
}

/** Shard grids that clamp (more shards than rows/columns) and
 *  single-router shards are legal and identical. */
TEST(ShardedDifferential, DegenerateGridsClampSafely)
{
    PhastlaneParams base;
    base.meshWidth = 5;
    base.meshHeight = 3;
    base.routerBufferEntries = 4;
    base.seed = 808;
    const RunResult scalar = runWorkload(base, 100, 4);
    for (const ShardSpec &g :
         {ShardSpec{5, 3}, ShardSpec{8, 8}, ShardSpec{1, 3}}) {
        PhastlaneParams p = base;
        p.shardCols = g.cols;
        p.shardRows = g.rows;
        p.shardThreads = 3;
        const RunResult sharded = runWorkload(p, 100, 4);
        expectIdentical(scalar, sharded,
                        "degenerate " + std::to_string(g.cols) + "x" +
                            std::to_string(g.rows));
    }
}

} // namespace
} // namespace phastlane::core
