/**
 * @file
 * Router buffer / rotating arbiter tests (paper Section 2.1.1).
 */

#include <set>
#include <gtest/gtest.h>

#include "core/router.hpp"

namespace phastlane::core {
namespace {

PhastlaneParams
smallParams(int entries)
{
    PhastlaneParams p;
    p.routerBufferEntries = entries;
    return p;
}

OpticalPacket
mkPacket(uint64_t branch, NodeId dst)
{
    OpticalPacket pkt;
    pkt.base.id = branch;
    pkt.branchId = branch;
    pkt.finalDst = dst;
    return pkt;
}

TEST(RouterBuffers, CapacityEnforced)
{
    RouterBuffers rb(0, smallParams(2));
    EXPECT_TRUE(rb.hasSpace(Port::North));
    rb.push(Port::North, mkPacket(1, 5), 0);
    rb.push(Port::North, mkPacket(2, 5), 0);
    EXPECT_FALSE(rb.hasSpace(Port::North));
    EXPECT_EQ(rb.freeSlots(Port::North), 0);
    // Other queues unaffected.
    EXPECT_TRUE(rb.hasSpace(Port::South));
    EXPECT_EQ(rb.totalOccupancy(), 2u);
}

TEST(RouterBuffers, InfiniteBuffers)
{
    RouterBuffers rb(0, smallParams(0));
    for (int i = 0; i < 1000; ++i)
        rb.push(Port::Local, mkPacket(static_cast<uint64_t>(i), 5), 0);
    EXPECT_TRUE(rb.hasSpace(Port::Local));
    EXPECT_EQ(rb.occupancy(Port::Local), 1000u);
}

TEST(RouterBuffers, ArbitrateHonorsEligibility)
{
    RouterBuffers rb(0, smallParams(4));
    rb.push(Port::North, mkPacket(1, 5), 10);
    auto launches = rb.arbitrate(5, [](const OpticalPacket &) {
        return Port::East;
    });
    EXPECT_TRUE(launches.empty());
    launches = rb.arbitrate(10, [](const OpticalPacket &) {
        return Port::East;
    });
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].second, Port::East);
    EXPECT_EQ(launches[0].first->state, EntryState::Launched);
}

TEST(RouterBuffers, OnePacketPerOutputPort)
{
    RouterBuffers rb(0, smallParams(4));
    // Two packets in different queues wanting the same output port.
    rb.push(Port::North, mkPacket(1, 5), 0);
    rb.push(Port::South, mkPacket(2, 5), 0);
    auto launches = rb.arbitrate(0, [](const OpticalPacket &) {
        return Port::East;
    });
    EXPECT_EQ(launches.size(), 1u);
}

TEST(RouterBuffers, UpToFourLaunchesAcrossPorts)
{
    RouterBuffers rb(0, smallParams(8));
    const Port outs[4] = {Port::North, Port::East, Port::South,
                          Port::West};
    for (int i = 0; i < 4; ++i) {
        OpticalPacket p = mkPacket(static_cast<uint64_t>(i + 1), 5);
        p.base.tag = static_cast<uint64_t>(i);
        rb.push(Port::Local, p, 0);
    }
    auto launches = rb.arbitrate(0, [&](const OpticalPacket &pkt) {
        return outs[pkt.base.tag];
    });
    EXPECT_EQ(launches.size(), 4u);
}

TEST(RouterBuffers, LaunchedEntriesAreSkipped)
{
    RouterBuffers rb(0, smallParams(4));
    rb.push(Port::North, mkPacket(1, 5), 0);
    auto first = rb.arbitrate(0, [](const OpticalPacket &) {
        return Port::East;
    });
    ASSERT_EQ(first.size(), 1u);
    auto second = rb.arbitrate(1, [](const OpticalPacket &) {
        return Port::East;
    });
    EXPECT_TRUE(second.empty());
}

TEST(RouterBuffers, ReleaseFreesTheSlot)
{
    RouterBuffers rb(0, smallParams(1));
    rb.push(Port::North, mkPacket(7, 5), 0);
    rb.arbitrate(0, [](const OpticalPacket &) { return Port::East; });
    EXPECT_FALSE(rb.hasSpace(Port::North));
    rb.releaseLaunched(7);
    EXPECT_TRUE(rb.hasSpace(Port::North));
    EXPECT_EQ(rb.totalOccupancy(), 0u);
}

TEST(RouterBuffers, RestoreDroppedRetriesLater)
{
    RouterBuffers rb(0, smallParams(2));
    rb.push(Port::North, mkPacket(7, 5), 0);
    rb.arbitrate(0, [](const OpticalPacket &) { return Port::East; });
    OpticalPacket updated = mkPacket(7, 5);
    updated.taps = {3};
    rb.restoreDropped(7, updated, 20);
    // Not eligible before cycle 20.
    auto launches = rb.arbitrate(10, [](const OpticalPacket &) {
        return Port::East;
    });
    EXPECT_TRUE(launches.empty());
    launches = rb.arbitrate(20, [](const OpticalPacket &) {
        return Port::East;
    });
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].first->pkt.taps, std::vector<NodeId>{3});
    EXPECT_EQ(launches[0].first->attempts, 1);
}

TEST(RouterBuffers, FindLaunchedByBranchId)
{
    RouterBuffers rb(0, smallParams(4));
    rb.push(Port::North, mkPacket(1, 5), 0);
    rb.push(Port::East, mkPacket(2, 6), 0);
    rb.arbitrate(0, [](const OpticalPacket &p) {
        return p.branchId == 1 ? Port::South : Port::West;
    });
    Port q = Port::Local;
    BufferEntry *e = rb.findLaunched(2, &q);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(q, Port::East);
    EXPECT_EQ(rb.findLaunched(99), nullptr);
}

TEST(RouterBuffers, RotatingPointerGivesEveryQueueATurn)
{
    // Five queues all wanting the same output port: over five
    // arbitration rounds each queue must win at least once.
    RouterBuffers rb(0, smallParams(4));
    for (Port q : kAllPortList)
        rb.push(q, mkPacket(static_cast<uint64_t>(portIndex(q)) + 1,
                            5), 0);
    std::set<uint64_t> winners;
    for (Cycle c = 0; c < 5; ++c) {
        auto launches = rb.arbitrate(c, [](const OpticalPacket &) {
            return Port::East;
        });
        ASSERT_EQ(launches.size(), 1u);
        winners.insert(launches[0].first->pkt.branchId);
        rb.releaseLaunched(launches[0].first->pkt.branchId);
    }
    EXPECT_EQ(winners.size(), 5u);
}

TEST(RouterBuffers, RotationOrderIsPinned)
{
    // Regression pin for the rotating arbiter: priority starts at the
    // North queue and advances exactly one queue per arbitration
    // round, so with every queue holding a packet that wants the same
    // output port the winners come out in queue-index order.
    RouterBuffers rb(0, smallParams(4));
    for (Port q : kAllPortList)
        rb.push(q, mkPacket(static_cast<uint64_t>(portIndex(q)) + 1,
                            5), 0);
    for (Cycle c = 0; c < 5; ++c) {
        auto launches = rb.arbitrate(c, [](const OpticalPacket &) {
            return Port::East;
        });
        ASSERT_EQ(launches.size(), 1u);
        EXPECT_EQ(launches[0].first->pkt.branchId, c + 1)
            << "round " << c << " must be queue " << c << "'s turn";
        rb.releaseLaunched(launches[0].first->pkt.branchId);
    }
}

TEST(RouterBuffers, RotationAdvancesOnIdleRounds)
{
    // The pointer moves every round, launches or not: after one empty
    // round the East queue (index 1) holds priority, so East beats
    // North for a contested port even though North has a lower index.
    RouterBuffers rb(0, smallParams(4));
    auto empty = rb.arbitrate(0, [](const OpticalPacket &) {
        return Port::East;
    });
    EXPECT_TRUE(empty.empty());
    rb.push(Port::North, mkPacket(1, 5), 0);
    rb.push(Port::East, mkPacket(2, 5), 0);
    auto launches = rb.arbitrate(1, [](const OpticalPacket &) {
        return Port::South;
    });
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].first->pkt.branchId, 2u);
}

TEST(RouterBuffers, EmptiedQueueDoesNotSkipTheNextTurn)
{
    // Releasing the winner (emptying its queue) mid-rotation must not
    // cost the following queue its turn: with North drained after
    // round 0, round 1 belongs to East, round 2 to South.
    RouterBuffers rb(0, smallParams(4));
    rb.push(Port::North, mkPacket(1, 5), 0);
    rb.push(Port::East, mkPacket(2, 5), 0);
    rb.push(Port::South, mkPacket(3, 5), 0);
    for (Cycle c = 0; c < 3; ++c) {
        auto launches = rb.arbitrate(c, [](const OpticalPacket &) {
            return Port::West;
        });
        ASSERT_EQ(launches.size(), 1u);
        EXPECT_EQ(launches[0].first->pkt.branchId, c + 1);
        rb.releaseLaunched(launches[0].first->pkt.branchId);
    }
}

TEST(RouterBuffers, OldestFirstWinsAcrossQueues)
{
    // OldestFirst arbitration ranks by global insertion age, not
    // queue index: a South-queue packet pushed first beats a younger
    // North-queue packet for a contested port, round after round.
    PhastlaneParams p = smallParams(4);
    p.bufferArbitration = BufferArbitration::OldestFirst;
    RouterBuffers rb(0, p);
    rb.push(Port::South, mkPacket(1, 5), 0);
    rb.push(Port::North, mkPacket(2, 5), 0);
    auto launches = rb.arbitrate(0, [](const OpticalPacket &) {
        return Port::East;
    });
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].first->pkt.branchId, 1u);
    // The loser is untouched and wins once the port frees up.
    rb.releaseLaunched(1);
    launches = rb.arbitrate(1, [](const OpticalPacket &) {
        return Port::East;
    });
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].first->pkt.branchId, 2u);
}

TEST(RouterBuffers, OldestFirstRespectsPortExclusivity)
{
    // When the two oldest entries contend for one port, the younger
    // of them is skipped but a still-younger entry aimed at a free
    // port launches in the same round.
    PhastlaneParams p = smallParams(4);
    p.bufferArbitration = BufferArbitration::OldestFirst;
    RouterBuffers rb(0, p);
    OpticalPacket a = mkPacket(1, 5);
    a.base.tag = 0; // -> East
    OpticalPacket b = mkPacket(2, 5);
    b.base.tag = 0; // -> East (conflict with a)
    OpticalPacket c = mkPacket(3, 5);
    c.base.tag = 1; // -> West
    rb.push(Port::North, a, 0);
    rb.push(Port::South, b, 0);
    rb.push(Port::Local, c, 0);
    auto launches = rb.arbitrate(0, [](const OpticalPacket &pkt) {
        return pkt.base.tag == 0 ? Port::East : Port::West;
    });
    ASSERT_EQ(launches.size(), 2u);
    EXPECT_EQ(launches[0].first->pkt.branchId, 1u);
    EXPECT_EQ(launches[1].first->pkt.branchId, 3u);
    EXPECT_EQ(rb.findLaunched(2), nullptr);
}

TEST(RouterBuffers, OldestFirstHonorsEligibilityAndState)
{
    // A not-yet-eligible older entry must not block a younger
    // eligible one, and Launched entries never re-launch.
    PhastlaneParams p = smallParams(4);
    p.bufferArbitration = BufferArbitration::OldestFirst;
    RouterBuffers rb(0, p);
    rb.push(Port::North, mkPacket(1, 5), 50); // oldest, not eligible
    rb.push(Port::East, mkPacket(2, 5), 0);
    auto launches = rb.arbitrate(0, [](const OpticalPacket &) {
        return Port::South;
    });
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].first->pkt.branchId, 2u);
    // Entry 2 is now Launched; nothing is eligible at cycle 1.
    launches = rb.arbitrate(1, [](const OpticalPacket &) {
        return Port::South;
    });
    EXPECT_TRUE(launches.empty());
}

TEST(RouterBuffers, LaunchesPerQueueLimit)
{
    PhastlaneParams p = smallParams(8);
    p.launchesPerQueue = 1;
    RouterBuffers rb(0, p);
    // Two local packets wanting different ports: only one may launch
    // per cycle with the limit at 1.
    OpticalPacket a = mkPacket(1, 5);
    a.base.tag = 0;
    OpticalPacket b = mkPacket(2, 5);
    b.base.tag = 1;
    rb.push(Port::Local, a, 0);
    rb.push(Port::Local, b, 0);
    auto launches = rb.arbitrate(0, [](const OpticalPacket &pkt) {
        return pkt.base.tag == 0 ? Port::East : Port::West;
    });
    EXPECT_EQ(launches.size(), 1u);
}

TEST(AdmissionBucketTest, DeterministicLazyAccrual)
{
    AdmissionBucket b;
    b.reset(/*burst=*/2, /*period=*/3, /*now=*/0);
    // The bucket starts full; the first refill is due one period out.
    EXPECT_TRUE(b.consume(2, 3, 0));
    EXPECT_TRUE(b.consume(2, 3, 0));
    EXPECT_FALSE(b.consume(2, 3, 1));
    EXPECT_FALSE(b.consume(2, 3, 2));
    // Cycle 3: one token accrued.
    EXPECT_TRUE(b.consume(2, 3, 3));
    EXPECT_FALSE(b.consume(2, 3, 4));
    // A long idle gap accrues many periods but caps at the burst.
    EXPECT_TRUE(b.consume(2, 3, 30));
    EXPECT_TRUE(b.consume(2, 3, 30));
    EXPECT_FALSE(b.consume(2, 3, 30));
}

TEST(AdmissionBucketTest, AccrualIsIndependentOfQueryPattern)
{
    // Querying every cycle and querying once after a gap must leave
    // the bucket in the same state (lazy accrual determinism).
    AdmissionBucket stepped, jumped;
    stepped.reset(1, 5, 0);
    jumped.reset(1, 5, 0);
    EXPECT_TRUE(stepped.consume(1, 5, 0));
    EXPECT_TRUE(jumped.consume(1, 5, 0));
    for (uint64_t t = 1; t < 17; ++t)
        stepped.consume(1, 5, t);
    // stepped took tokens at t = 5, 10, 15; jumped only sees t = 17.
    EXPECT_FALSE(stepped.consume(1, 5, 17));
    EXPECT_TRUE(jumped.consume(1, 5, 17));
}

TEST(RouterBuffers, TokenBucketThrottlesLocalLaunches)
{
    PhastlaneParams p = smallParams(8);
    p.admission = AdmissionPolicy::TokenBucket;
    p.admissionBurst = 1;
    p.admissionPeriod = 4;
    RouterBuffers rb(0, p);
    OpticalPacket a = mkPacket(1, 5);
    a.base.tag = 0;
    OpticalPacket b = mkPacket(2, 5);
    b.base.tag = 1;
    rb.push(Port::Local, a, 0);
    rb.push(Port::Local, b, 0);
    // Burst 1: only one source-originated launch this cycle even
    // though both want distinct free ports.
    auto launches = rb.arbitrate(0, [](const OpticalPacket &pkt) {
        return pkt.base.tag == 0 ? Port::East : Port::West;
    });
    EXPECT_EQ(launches.size(), 1u);
    // No token until cycle 4.
    launches = rb.arbitrate(1, [](const OpticalPacket &pkt) {
        return pkt.base.tag == 0 ? Port::East : Port::West;
    });
    EXPECT_TRUE(launches.empty());
    launches = rb.arbitrate(4, [](const OpticalPacket &pkt) {
        return pkt.base.tag == 0 ? Port::East : Port::West;
    });
    EXPECT_EQ(launches.size(), 1u);
}

TEST(RouterBuffers, TokenBucketNeverThrottlesTransitQueues)
{
    PhastlaneParams p = smallParams(8);
    p.admission = AdmissionPolicy::TokenBucket;
    p.admissionBurst = 1;
    p.admissionPeriod = 100;
    RouterBuffers rb(0, p);
    // Drain the bucket with a local launch first.
    rb.push(Port::Local, mkPacket(1, 5), 0);
    auto launches = rb.arbitrate(0, [](const OpticalPacket &) {
        return Port::East;
    });
    ASSERT_EQ(launches.size(), 1u);
    // Transit (buffered-in-flight) packets are not admission-gated:
    // both launch with the bucket empty.
    OpticalPacket a = mkPacket(2, 5);
    a.base.tag = 0;
    OpticalPacket b = mkPacket(3, 5);
    b.base.tag = 1;
    rb.push(Port::North, a, 1);
    rb.push(Port::South, b, 1);
    launches = rb.arbitrate(1, [](const OpticalPacket &pkt) {
        return pkt.base.tag == 0 ? Port::West : Port::South;
    });
    EXPECT_EQ(launches.size(), 2u);
}

TEST(RouterBuffers, StarvationCounterTracksLosingStreaks)
{
    PhastlaneParams p = smallParams(8);
    RouterBuffers rb(0, p);
    // Three local packets contending for one output port: each
    // arbitration launches one and the rest record a loss.
    rb.push(Port::Local, mkPacket(1, 5), 0);
    rb.push(Port::Local, mkPacket(2, 5), 0);
    rb.push(Port::Local, mkPacket(3, 5), 0);
    auto all_east = [](const OpticalPacket &) { return Port::East; };
    EXPECT_EQ(rb.arbitrate(0, all_east).size(), 1u);
    EXPECT_EQ(rb.maxConsecutiveLosses(), 1u);
    EXPECT_EQ(rb.maxConsecutiveLossesLocal(), 1u);
    // Free the winner's slot; the next round launches one of the two
    // losers while the last packet's streak grows to 2.
    rb.releaseLaunched(1);
    auto launches = rb.arbitrate(1, all_east);
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].first->consecLosses, 0u);
    EXPECT_EQ(rb.maxConsecutiveLosses(), 2u);
    // The high-water mark persists after the streak ends.
    rb.releaseLaunched(launches[0].first->pkt.branchId);
    ASSERT_EQ(rb.arbitrate(2, all_east).size(), 1u);
    EXPECT_EQ(rb.maxConsecutiveLosses(), 2u);
}

TEST(RouterBuffers, EnqueuedAtStampsEligibility)
{
    PhastlaneParams p = smallParams(4);
    RouterBuffers rb(0, p);
    rb.push(Port::Local, mkPacket(1, 5), 17);
    auto launches = rb.arbitrate(17, [](const OpticalPacket &) {
        return Port::East;
    });
    ASSERT_EQ(launches.size(), 1u);
    // AgeBoost measures queueing age from the eligibility stamp.
    EXPECT_EQ(launches[0].first->enqueuedAt, 17u);
}

} // namespace
} // namespace phastlane::core
