# Empty dependencies file for test_optical_area.
# This may be replaced when dependencies are built.
