/**
 * @file
 * Synthetic traffic pattern tests: permutation properties and the
 * paper's four Fig 9 patterns.
 */

#include <gtest/gtest.h>
#include <set>

#include "traffic/patterns.hpp"

namespace phastlane::traffic {
namespace {

class DeterministicPatterns : public ::testing::TestWithParam<Pattern>
{
  protected:
    MeshTopology mesh_{8, 8};
    Rng rng_{1};
};

TEST_P(DeterministicPatterns, NoSelfTraffic)
{
    for (NodeId s = 0; s < 64; ++s)
        EXPECT_NE(destination(GetParam(), s, mesh_, rng_), s);
}

TEST_P(DeterministicPatterns, DestinationsInRange)
{
    for (NodeId s = 0; s < 64; ++s) {
        const NodeId d = destination(GetParam(), s, mesh_, rng_);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 64);
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, DeterministicPatterns,
    ::testing::Values(Pattern::BitComplement, Pattern::BitReverse,
                      Pattern::Shuffle, Pattern::Transpose,
                      Pattern::Tornado, Pattern::Neighbor),
    [](const auto &info) {
        return std::string(patternName(info.param));
    });

TEST(Patterns, BitComplementValues)
{
    MeshTopology mesh(8, 8);
    Rng rng(1);
    EXPECT_EQ(destination(Pattern::BitComplement, 0, mesh, rng), 63);
    EXPECT_EQ(destination(Pattern::BitComplement, 63, mesh, rng), 0);
    EXPECT_EQ(destination(Pattern::BitComplement, 0b101010, mesh,
                          rng), 0b010101);
}

TEST(Patterns, BitReverseValues)
{
    MeshTopology mesh(8, 8);
    Rng rng(1);
    // 6-bit reversal: 0b000001 -> 0b100000.
    EXPECT_EQ(destination(Pattern::BitReverse, 1, mesh, rng), 32);
    EXPECT_EQ(destination(Pattern::BitReverse, 0b110100, mesh, rng),
              0b001011);
}

TEST(Patterns, ShuffleIsRotateLeft)
{
    MeshTopology mesh(8, 8);
    Rng rng(1);
    EXPECT_EQ(destination(Pattern::Shuffle, 0b000011, mesh, rng),
              0b000110);
    EXPECT_EQ(destination(Pattern::Shuffle, 0b100000, mesh, rng),
              0b000001);
}

TEST(Patterns, TransposeSwapsCoordinates)
{
    MeshTopology mesh(8, 8);
    Rng rng(1);
    const NodeId src = mesh.nodeAt({2, 5});
    EXPECT_EQ(destination(Pattern::Transpose, src, mesh, rng),
              mesh.nodeAt({5, 2}));
}

TEST(Patterns, BitPatternsArePermutationsModuloFixedPoints)
{
    // Excluding self-remapped fixed points, the deterministic
    // patterns must hit distinct destinations.
    MeshTopology mesh(8, 8);
    Rng rng(1);
    for (Pattern p : {Pattern::BitComplement, Pattern::BitReverse,
                      Pattern::Transpose}) {
        std::set<NodeId> dsts;
        int fixed = 0;
        for (NodeId s = 0; s < 64; ++s) {
            const NodeId d = destination(p, s, mesh, rng);
            if (d == static_cast<NodeId>((s + 1) % 64))
                ++fixed; // remapped self-hit
            else
                dsts.insert(d);
        }
        EXPECT_GE(static_cast<int>(dsts.size()), 64 - 2 * fixed - 1);
    }
}

TEST(Patterns, UniformExcludesSelfAndCoversAll)
{
    MeshTopology mesh(8, 8);
    Rng rng(7);
    std::set<NodeId> seen;
    for (int i = 0; i < 20000; ++i) {
        const NodeId d =
            destination(Pattern::UniformRandom, 5, mesh, rng);
        EXPECT_NE(d, 5);
        seen.insert(d);
    }
    EXPECT_EQ(seen.size(), 63u);
}

TEST(Patterns, HotspotConcentratesTraffic)
{
    MeshTopology mesh(8, 8);
    Rng rng(7);
    const NodeId hot = mesh.nodeAt({4, 4});
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (destination(Pattern::Hotspot, 2, mesh, rng) == hot)
            ++hits;
    }
    // 20% direct + uniform share.
    EXPECT_GT(hits, n / 6);
}

TEST(Patterns, HotspotRealizesNominalFraction)
{
    // Regression: the uniform remainder used to include the hot node,
    // so the realized hot fraction overshot the nominal one. The hot
    // node is now excluded from the remainder, making the realized
    // fraction match the knob.
    MeshTopology mesh(8, 8);
    Rng rng(11);
    PatternOptions opts;
    opts.hotspotFraction = 0.3;
    const NodeId hot = mesh.nodeAt({4, 4});
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        if (destination(Pattern::Hotspot, 2, mesh, rng, opts) == hot)
            ++hits;
    }
    const double realized = static_cast<double>(hits) / n;
    // Binomial(50000, 0.3) has sigma ~ 0.002; allow 5 sigma.
    EXPECT_NEAR(realized, 0.3, 0.011);
}

TEST(Patterns, HotspotCustomNodeAndRemainderExcludesHot)
{
    MeshTopology mesh(4, 4);
    Rng rng(3);
    PatternOptions opts;
    opts.hotspotFraction = 0.5;
    opts.hotspotNode = 0;
    std::set<NodeId> seen;
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const NodeId d =
            destination(Pattern::Hotspot, 5, mesh, rng, opts);
        EXPECT_NE(d, 5);
        seen.insert(d);
        if (d == 0)
            ++hits;
    }
    // All non-self nodes reachable, and the hot node only via the
    // direct draw: realized fraction tracks the nominal 0.5.
    EXPECT_EQ(seen.size(), 15u);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.5, 0.02);
}

TEST(Patterns, ValidatePatternRejectsMismatches)
{
    MeshTopology square_non_pow2(3, 3);
    MeshTopology rect_pow2(8, 4);
    MeshTopology rect_non_square(4, 2);
    EXPECT_FALSE(
        validatePattern(Pattern::BitComplement, square_non_pow2)
            .empty());
    EXPECT_TRUE(
        validatePattern(Pattern::BitComplement, rect_pow2).empty());
    EXPECT_FALSE(
        validatePattern(Pattern::Transpose, rect_non_square).empty());
    EXPECT_TRUE(
        validatePattern(Pattern::UniformRandom, square_non_pow2)
            .empty());
}

TEST(Patterns, ParseRoundTrip)
{
    for (Pattern p : {Pattern::UniformRandom, Pattern::BitComplement,
                      Pattern::BitReverse, Pattern::Shuffle,
                      Pattern::Transpose, Pattern::Tornado,
                      Pattern::Neighbor, Pattern::Hotspot}) {
        EXPECT_EQ(parsePattern(patternName(p)), p);
    }
}

TEST(Patterns, PowerOfTwoRequirementFlag)
{
    EXPECT_TRUE(needsPowerOfTwo(Pattern::BitComplement));
    EXPECT_TRUE(needsPowerOfTwo(Pattern::Shuffle));
    EXPECT_FALSE(needsPowerOfTwo(Pattern::Transpose));
    EXPECT_FALSE(needsPowerOfTwo(Pattern::UniformRandom));
}

} // namespace
} // namespace phastlane::traffic
