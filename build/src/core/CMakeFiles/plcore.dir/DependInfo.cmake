
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/control.cpp" "src/core/CMakeFiles/plcore.dir/control.cpp.o" "gcc" "src/core/CMakeFiles/plcore.dir/control.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/plcore.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/plcore.dir/network.cpp.o.d"
  "/root/repo/src/core/nic.cpp" "src/core/CMakeFiles/plcore.dir/nic.cpp.o" "gcc" "src/core/CMakeFiles/plcore.dir/nic.cpp.o.d"
  "/root/repo/src/core/return_path.cpp" "src/core/CMakeFiles/plcore.dir/return_path.cpp.o" "gcc" "src/core/CMakeFiles/plcore.dir/return_path.cpp.o.d"
  "/root/repo/src/core/router.cpp" "src/core/CMakeFiles/plcore.dir/router.cpp.o" "gcc" "src/core/CMakeFiles/plcore.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/plnet.dir/DependInfo.cmake"
  "/root/repo/build/src/optical/CMakeFiles/ploptical.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
