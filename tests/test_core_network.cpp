/**
 * @file
 * End-to-end Phastlane network tests: delivery correctness, single-
 * cycle multi-hop transit, interim-node pipelining, contention
 * buffering, drop/retransmit, multicast, and determinism.
 */

#include <gtest/gtest.h>
#include <map>
#include <set>

#include "core/network.hpp"
#include "core/observer.hpp"

namespace phastlane::core {
namespace {

Packet
unicast(PacketId id, NodeId src, NodeId dst, Cycle created = 0)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    p.createdAt = created;
    return p;
}

Packet
broadcast(PacketId id, NodeId src, Cycle created = 0)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.broadcast = true;
    p.createdAt = created;
    return p;
}

/** Run until idle; returns all deliveries. */
std::vector<Delivery>
runToIdle(PhastlaneNetwork &net, int max_cycles = 10000)
{
    std::vector<Delivery> all;
    for (int i = 0; i < max_cycles && net.inFlight() > 0; ++i) {
        net.step();
        for (const auto &d : net.deliveries())
            all.push_back(d);
    }
    EXPECT_EQ(net.inFlight(), 0u) << "network did not drain";
    return all;
}

TEST(PhastlaneNet, ShortUnicastArrivesInTwoCycles)
{
    PhastlaneNetwork net(PhastlaneParams{});
    ASSERT_TRUE(net.inject(unicast(1, 0, 3)));
    const auto dels = runToIdle(net);
    ASSERT_EQ(dels.size(), 1u);
    EXPECT_EQ(dels[0].node, 3);
    // NIC transfer (1 cycle) + single-cycle 3-hop optical transit.
    EXPECT_LE(dels[0].at, 2u);
}

TEST(PhastlaneNet, CornerToCornerUsesInterimNodes)
{
    // 14 hops with a 4-hop budget: 4+4+4+2 segments, buffered at
    // three interim nodes -> four transit cycles plus NIC transfer.
    PhastlaneNetwork net(PhastlaneParams{});
    ASSERT_TRUE(net.inject(unicast(1, 0, 63)));
    const auto dels = runToIdle(net);
    ASSERT_EQ(dels.size(), 1u);
    EXPECT_EQ(dels[0].node, 63);
    EXPECT_EQ(dels[0].at, 4u);
    EXPECT_EQ(net.phastlaneCounters().interimAccepts, 3u);
}

TEST(PhastlaneNet, EightHopNetworkNeedsFewerSegments)
{
    PhastlaneParams p;
    p.maxHopsPerCycle = 8;
    PhastlaneNetwork net(p);
    ASSERT_TRUE(net.inject(unicast(1, 0, 63)));
    const auto dels = runToIdle(net);
    ASSERT_EQ(dels.size(), 1u);
    // 14 hops = 8 + 6: one interim node, two transit cycles.
    EXPECT_EQ(dels[0].at, 2u);
    EXPECT_EQ(net.phastlaneCounters().interimAccepts, 1u);
}

TEST(PhastlaneNet, AllPairsUnicastDelivery)
{
    PhastlaneNetwork net(PhastlaneParams{});
    PacketId id = 1;
    std::map<PacketId, NodeId> expect;
    for (NodeId s = 0; s < 64; s += 9) {
        for (NodeId d = 0; d < 64; d += 7) {
            if (s == d)
                continue;
            Packet p = unicast(id, s, d, net.now());
            ASSERT_TRUE(net.inject(p));
            expect[id] = d;
            ++id;
            runToIdle(net); // one at a time: no contention
        }
    }
    EXPECT_EQ(net.counters().deliveries, expect.size());
    EXPECT_EQ(net.phastlaneCounters().drops, 0u);
}

class BroadcastFromEverywhere : public ::testing::TestWithParam<NodeId>
{
};

TEST_P(BroadcastFromEverywhere, Delivers63CopiesExactlyOnce)
{
    PhastlaneNetwork net(PhastlaneParams{});
    ASSERT_TRUE(net.inject(broadcast(1, GetParam())));
    const auto dels = runToIdle(net);
    ASSERT_EQ(dels.size(), 63u);
    std::map<NodeId, int> seen;
    for (const auto &d : dels)
        ++seen[d.node];
    EXPECT_EQ(seen.count(GetParam()), 0u);
    for (const auto &[node, count] : seen)
        EXPECT_EQ(count, 1) << "node " << node;
}

INSTANTIATE_TEST_SUITE_P(Sources, BroadcastFromEverywhere,
                         ::testing::Values(0, 7, 27, 36, 56, 63, 31));

TEST(PhastlaneNet, ContentionBuffersInsteadOfDropping)
{
    // A straight packet and a turning packet reach router (3,3) in
    // the same wavefront sub-step wanting its North port: the
    // turning one must be received and buffered, none dropped.
    PhastlaneNetwork net(PhastlaneParams{});
    const NodeId straight_src = 8 * 2 + 3; // (3,2)
    const NodeId turn_src = 8 * 3 + 2;     // (2,3)
    const NodeId dst = 8 * 6 + 3;          // (3,6)
    ASSERT_TRUE(net.inject(unicast(1, straight_src, dst)));
    ASSERT_TRUE(net.inject(unicast(2, turn_src, dst)));
    const auto dels = runToIdle(net);
    EXPECT_EQ(dels.size(), 2u);
    EXPECT_EQ(net.phastlaneCounters().drops, 0u);
    EXPECT_GT(net.phastlaneCounters().blockedBuffered, 0u);
}

TEST(PhastlaneNet, StraightHasPriorityOverTurn)
{
    // A straight packet and a turning packet contending for the same
    // output in the same cycle: the straight one passes unbuffered.
    PhastlaneNetwork net(PhastlaneParams{});
    // Straight along column 3 northward: 3 -> 59.
    // Turning into column 3 at row 2: 16+7=23... use (0,2)=16 ->
    // (3,7)=59? Both target distinct finals to keep checks simple.
    ASSERT_TRUE(net.inject(unicast(1, 3, 3 + 8 * 7)));  // straight N
    ASSERT_TRUE(net.inject(unicast(2, 16, 3 + 8 * 6))); // turns at col 3
    const auto dels = runToIdle(net);
    ASSERT_EQ(dels.size(), 2u);
    // The straight packet (id 1) is never buffered mid-route; the
    // turning one may be.
    for (const auto &d : dels) {
        if (d.packet.id == 1)
            EXPECT_LE(d.at, 3u);
    }
    EXPECT_EQ(net.phastlaneCounters().drops, 0u);
}

TEST(PhastlaneNet, TinyBuffersDropAndRetransmit)
{
    PhastlaneParams p;
    p.routerBufferEntries = 1;
    PhastlaneNetwork net(p);
    // A burst of broadcasts from every corner floods the one-entry
    // buffers; drops must occur yet every delivery must complete.
    PacketId id = 1;
    for (NodeId src : {0, 7, 56, 63, 27, 36})
        ASSERT_TRUE(net.inject(broadcast(id++, src, net.now())));
    const auto dels = runToIdle(net, 100000);
    EXPECT_EQ(dels.size(), 6u * 63u);
    EXPECT_GT(net.phastlaneCounters().drops, 0u);
    EXPECT_EQ(net.phastlaneCounters().retransmissions,
              net.phastlaneCounters().drops);
}

TEST(PhastlaneNet, InfiniteBuffersNeverDrop)
{
    PhastlaneParams p;
    p.routerBufferEntries = 0; // infinite
    PhastlaneNetwork net(p);
    PacketId id = 1;
    for (int round = 0; round < 3; ++round) {
        for (NodeId src = 0; src < 64; src += 5)
            ASSERT_TRUE(net.inject(broadcast(id++, src, net.now())));
        runToIdle(net, 100000);
    }
    EXPECT_EQ(net.phastlaneCounters().drops, 0u);
}

TEST(PhastlaneNet, NicBackpressure)
{
    PhastlaneParams p;
    p.nicQueueEntries = 16; // one broadcast (16 branches) fills it
    PhastlaneNetwork net(p);
    ASSERT_TRUE(net.inject(broadcast(1, 27)));
    EXPECT_FALSE(net.nicHasSpace(27));
    EXPECT_FALSE(net.inject(broadcast(2, 27)));
    // Other nodes unaffected.
    EXPECT_TRUE(net.inject(broadcast(3, 28)));
    runToIdle(net, 100000);
    EXPECT_TRUE(net.nicHasSpace(27));
}

TEST(PhastlaneNet, DeterministicAcrossRuns)
{
    auto run = [](uint64_t seed) {
        PhastlaneParams p;
        p.seed = seed;
        p.routerBufferEntries = 2;
        PhastlaneNetwork net(p);
        PacketId id = 1;
        for (int round = 0; round < 5; ++round) {
            for (NodeId src = 0; src < 64; src += 3)
                net.inject(broadcast(id++, src, net.now()));
            for (int c = 0; c < 20; ++c)
                net.step();
        }
        while (net.inFlight() > 0)
            net.step();
        return std::tuple{net.now(), net.counters().deliveries,
                          net.phastlaneCounters().drops,
                          net.events().launches};
    };
    EXPECT_EQ(run(1), run(1));
}

class WavefrontModes
    : public ::testing::TestWithParam<WavefrontModel>
{
};

TEST_P(WavefrontModes, HeavyTrafficStillDeliversEverything)
{
    PhastlaneParams p;
    p.wavefront = GetParam();
    p.routerBufferEntries = 4;
    PhastlaneNetwork net(p);
    PacketId id = 1;
    uint64_t expected = 0;
    for (int round = 0; round < 4; ++round) {
        for (NodeId src = 0; src < 64; src += 4) {
            ASSERT_TRUE(net.inject(broadcast(id++, src, net.now())));
            expected += 63;
        }
        for (int c = 0; c < 10; ++c)
            net.step();
    }
    runToIdle(net, 100000);
    EXPECT_EQ(net.counters().deliveries, expected);
}

INSTANTIATE_TEST_SUITE_P(Modes, WavefrontModes,
                         ::testing::Values(
                             WavefrontModel::SubstepFcfs,
                             WavefrontModel::BitplaneFcfs,
                             WavefrontModel::GlobalPriority));

TEST(PhastlaneNet, RoundRobinArbitrationDeliversEverything)
{
    PhastlaneParams p;
    p.opticalArbitration = OpticalArbitration::RoundRobin;
    p.routerBufferEntries = 4;
    PhastlaneNetwork net(p);
    PacketId id = 1;
    for (NodeId src = 0; src < 64; src += 2)
        ASSERT_TRUE(net.inject(broadcast(id++, src, net.now())));
    const auto dels = runToIdle(net, 100000);
    EXPECT_EQ(dels.size(), 32u * 63u);
}

TEST(PhastlaneNet, ExponentialBackoffStillConverges)
{
    PhastlaneParams p;
    p.routerBufferEntries = 1;
    p.exponentialBackoff = true;
    PhastlaneNetwork net(p);
    PacketId id = 1;
    for (NodeId src = 0; src < 64; src += 8)
        ASSERT_TRUE(net.inject(broadcast(id++, src, net.now())));
    const auto dels = runToIdle(net, 200000);
    EXPECT_EQ(dels.size(), 8u * 63u);
}

TEST(PhastlaneNet, EventAccountingConsistent)
{
    PhastlaneNetwork net(PhastlaneParams{});
    PacketId id = 1;
    for (NodeId src = 0; src < 64; src += 6)
        ASSERT_TRUE(net.inject(broadcast(id++, src, net.now())));
    runToIdle(net, 100000);
    const auto &ev = net.events();
    // Every launch reads a buffer entry; every buffered reception
    // writes one.
    EXPECT_EQ(ev.bufferReads, ev.launches);
    EXPECT_GE(ev.launches, net.counters().packetsInjected);
    EXPECT_EQ(ev.drops, net.phastlaneCounters().drops);
    // Taps are a subset of deliveries.
    EXPECT_LE(ev.tapReceives, net.counters().deliveries);
}

TEST(PhastlaneNet, MulticastRetransmitAfterPartialDropIsExactlyOnce)
{
    // A multicast branch that served some taps and is then dropped
    // must be retransmitted covering ONLY the unserved taps (the
    // paper clears the Multicast bits of nodes reached before the
    // drop) — every addressed node once, no node twice.
    struct PartialDropSpy : StepObserver {
        int partialDrops = 0;
        void onDrop(const OpticalPacket &pkt, NodeId, NodeId, int,
                    bool) override
        {
            if (pkt.multicast && pkt.tapCursor > 0)
                ++partialDrops;
        }
    };

    PhastlaneParams p;
    p.routerBufferEntries = 1;
    PhastlaneNetwork net(p);
    PartialDropSpy spy;
    net.setObserver(&spy);
    PacketId id = 1;
    for (NodeId src = 0; src < 64; ++src)
        ASSERT_TRUE(net.inject(broadcast(id++, src, net.now())));
    const auto dels = runToIdle(net, 200000);

    ASSERT_GT(spy.partialDrops, 0)
        << "storm never dropped a partially served multicast branch";
    // Exactly-once delivery per (message, node), full coverage.
    std::map<PacketId, std::set<NodeId>> reached;
    for (const auto &d : dels) {
        EXPECT_TRUE(reached[d.packet.id].insert(d.node).second)
            << "message " << d.packet.id << " delivered twice at node "
            << d.node;
    }
    ASSERT_EQ(reached.size(), 64u);
    for (PacketId m = 1; m <= 64; ++m)
        EXPECT_EQ(reached[m].size(), 63u)
            << "message " << m << " missed nodes";
    EXPECT_EQ(net.phastlaneCounters().drops,
              net.phastlaneCounters().retransmissions);
}

TEST(PhastlaneNet, LatencyStampsAreOrdered)
{
    PhastlaneNetwork net(PhastlaneParams{});
    for (int c = 0; c < 3; ++c)
        net.step();
    Packet p = unicast(1, 5, 60, net.now());
    ASSERT_TRUE(net.inject(p));
    const auto dels = runToIdle(net);
    ASSERT_EQ(dels.size(), 1u);
    EXPECT_LE(dels[0].acceptedAt, dels[0].injectedAt);
    EXPECT_LE(dels[0].injectedAt, dels[0].at);
    EXPECT_EQ(dels[0].acceptedAt, p.createdAt);
}

} // namespace
} // namespace phastlane::core
