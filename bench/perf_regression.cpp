/**
 * @file
 * Simulator performance regression harness (not a paper artifact).
 *
 * Measures:
 *   1. PhastlaneNetwork::step() throughput (cycles/sec and
 *      node-cycles/sec) under the micro_router_step uniform-random
 *      workload, exercising the bit-plane wavefront hot path. The
 *      serial metric is taken on process CPU time
 *      (CLOCK_PROCESS_CPUTIME_ID), best of --step-reps repetitions, so
 *      background load on the measuring machine cannot fake a
 *      regression (or hide one).
 *   2. sweep wall-clock at 1, 2, 4 and 8 simulation threads over a
 *      fixed (non-early-exit) rate grid, exercising the parallel
 *      dispatch in runSweep(). Each point records its speedup over
 *      the 1-thread run and its parallel efficiency, normalized by
 *      the attainable speedup min(threads, hardware_concurrency) so a
 *      2-core CI box is not asked to show an 8x speedup.
 *   3. Mega-mesh step() wall-clock throughput, scalar versus the
 *      sharded topology-parallel engine at 1/2/4/8 worker threads
 *      (DESIGN.md §12): 32x32 with a 4x4 shard grid, shrunk to 16x16
 *      with 2x2 shards under --quick so the tier-1 smoke gate covers
 *      the sharded path too. Recorded in the JSON for trend tracking,
 *      not gated: shard scaling is a property of the measuring
 *      machine's core count.
 *   4. Batched multi-sim throughput (DESIGN.md §13): 64 independent
 *      8x8 instances at the default offered load, stepped serially
 *      one-after-another versus in one lockstep NetworkBatch gang.
 *      Gated (with --baseline) on the batched/serial speedup staying
 *      above --multisim-floor (default 1.3).
 *
 * Emits BENCH_perf.json (override with --out <path>) so the perf
 * trajectory is tracked across PRs; --quick shrinks the workload for
 * CI smoke runs.
 *
 * With --baseline <path> the harness becomes a gate. It fails
 * (without touching --out) when:
 *   - step_cycles_per_sec falls below --gate-ratio (default 0.70) of
 *     the baseline value, or
 *   - min_parallel_efficiency falls below --eff-floor (default 0.40),
 *     or below --gate-ratio of the baseline's recorded efficiency
 *     (schema-2 baselines only; schema-1 baselines carry no
 *     efficiency and gate on throughput alone).
 * A missing baseline is reported and skipped, not failed, so fresh
 * checkouts still run.
 *
 * The gate never rewrites the baseline implicitly: refreshing the
 * committed BENCH_perf.json requires the explicit --update-baseline
 * flag, which copies this run's results over the baseline path only
 * after the gate has passed.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "core/network.hpp"
#include "sim/configs.hpp"
#include "sim/multisim.hpp"
#include "sim/parallel.hpp"
#include "sim/sweep.hpp"
#include "traffic/patterns.hpp"

using namespace phastlane;
using namespace phastlane::sim;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Process CPU seconds (immune to other processes on the machine). */
double
cpuSeconds()
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Bernoulli uniform-random step() workload on an arbitrary mesh/shard
 * configuration, timed with the supplied clock. The sharded points use
 * wall-clock (the whole point is that CPU time is spread over several
 * cores); the scalar 32x32 reference uses the same clock so the
 * speedup ratio compares like with like.
 */
double
stepThroughputWith(const core::PhastlaneParams &params, uint64_t cycles,
                   double rate, double (*clock_fn)())
{
    core::PhastlaneNetwork net(params);
    Rng rng(7);
    PacketId id = 1;
    const double start = clock_fn();
    for (uint64_t c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            if (rng.bernoulli(rate)) {
                Packet p;
                p.id = id++;
                p.src = n;
                p.dst = traffic::destination(
                    traffic::Pattern::UniformRandom, n, net.mesh(),
                    rng);
                p.createdAt = net.now();
                net.inject(p);
            }
        }
        net.step();
    }
    const double secs = clock_fn() - start;
    return secs > 0.0 ? static_cast<double>(cycles) / secs : 0.0;
}

/** step() CPU-time throughput under Bernoulli uniform-random load. */
double
stepThroughput(uint64_t cycles, double rate)
{
    core::PhastlaneParams params;
    return stepThroughputWith(params, cycles, rate, cpuSeconds);
}

/** Wall-clock of one fixed-size sweep at the given thread count. */
double
sweepSeconds(const SweepConfig &base, int threads)
{
    SweepConfig sc = base;
    sc.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const auto pts = runSweep(makeConfig("Optical4"), sc);
    const double secs = secondsSince(start);
    if (pts.size() != base.rates.size())
        std::fprintf(stderr,
                     "warning: sweep truncated (%zu/%zu points)\n",
                     pts.size(), base.rates.size());
    return secs;
}

/** One measurement point of the thread-scaling curve. */
struct ScalePoint {
    int threads = 1;
    double seconds = 0.0;
    double speedup = 0.0;
    double expectedSpeedup = 1.0;
    double efficiency = 0.0;
};

/**
 * Numeric value following "<key>": in a perf JSON, or @p fallback.
 * Tolerant by design: it reads both the schema-1 files committed
 * before the thread sweep existed and the current schema-2 files.
 */
double
readBaselineKey(const std::string &path, const std::string &key,
                double fallback)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return fallback;
    std::string text(1 << 16, '\0');
    const size_t n = std::fread(text.data(), 1, text.size(), f);
    std::fclose(f);
    text.resize(n);
    const std::string quoted = "\"" + key + "\":";
    const size_t pos = text.find(quoted);
    if (pos == std::string::npos)
        return fallback;
    return std::atof(text.c_str() + pos + quoted.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    const std::string out =
        opts.raw.getString("out", "BENCH_perf.json");
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

    // 1. Single-thread step() throughput (the hot-path metric), best
    // of several repetitions on process CPU time.
    const uint64_t warm_cycles = opts.quick ? 500 : 2000;
    const uint64_t cycles = opts.quick ? 2000 : 20000;
    const double rate = 0.10;
    const int reps = static_cast<int>(
        opts.raw.getInt("step-reps", opts.quick ? 2 : 3));
    stepThroughput(warm_cycles, rate); // warm caches/allocator
    std::vector<double> step_runs;
    double steps_per_sec = 0.0;
    for (int r = 0; r < std::max(1, reps); ++r) {
        const double run = stepThroughput(cycles, rate);
        step_runs.push_back(run);
        steps_per_sec = std::max(steps_per_sec, run);
    }
    std::printf("step() throughput: %.0f cycles/sec "
                "(%.2fM node-cycles/sec, rate %.2f, %llu cycles, "
                "best of %zu, CPU time)\n",
                steps_per_sec, steps_per_sec * 64 / 1e6, rate,
                static_cast<unsigned long long>(cycles),
                step_runs.size());

    // 2. Sweep wall-clock scaling over a fixed 1/2/4/8 thread ladder.
    SweepConfig sc;
    sc.pattern = traffic::Pattern::UniformRandom;
    sc.warmupCycles = opts.quick ? 200 : 1000;
    sc.measureCycles = opts.quick ? 800 : 4000;
    sc.seed = opts.seed;
    sc.stopAtSaturation = false; // constant work per thread count
    {
        const int points = opts.quick ? 8 : 16;
        for (int i = 1; i <= points; ++i)
            sc.rates.push_back(0.28 * i / points);
    }

    const std::vector<int> thread_counts = {1, 2, 4, 8};
    std::vector<ScalePoint> sweep;
    double serial_secs = 0.0;
    double min_eff = 1.0;
    for (int t : thread_counts) {
        ScalePoint pt;
        pt.threads = t;
        pt.seconds = sweepSeconds(sc, t);
        if (t == 1)
            serial_secs = pt.seconds;
        pt.speedup =
            pt.seconds > 0.0 ? serial_secs / pt.seconds : 0.0;
        pt.expectedSpeedup =
            static_cast<double>(std::min<unsigned>(
                static_cast<unsigned>(t), hw));
        pt.efficiency = pt.speedup / pt.expectedSpeedup;
        min_eff = std::min(min_eff, pt.efficiency);
        sweep.push_back(pt);
        std::printf("sweep wall-clock @ %2d threads: %7.3f s "
                    "(speedup %.2fx, efficiency %.2f of %.0fx "
                    "attainable)\n",
                    t, pt.seconds, pt.speedup, pt.efficiency,
                    pt.expectedSpeedup);
    }

    // 3. Mega-mesh sharded step(): wall-clock throughput versus the
    // unsharded scalar engine on the same topology. --quick shrinks
    // the mesh (16x16, 2x2 shards) so the smoke gate still covers the
    // sharded path. Informational (recorded, not gated): shard
    // scaling depends on the core count of the measuring machine.
    const int mega_dim = opts.quick ? 16 : 32;
    const int mega_shard_dim = opts.quick ? 2 : 4;
    const uint64_t mega_cycles = opts.quick ? 300 : 1500;
    core::PhastlaneParams mega;
    mega.meshWidth = mega_dim;
    mega.meshHeight = mega_dim;
    stepThroughputWith(mega, opts.quick ? 50 : 200, rate,
                       wallSeconds); // warm
    const double mega_scalar =
        stepThroughputWith(mega, mega_cycles, rate, wallSeconds);
    std::printf("%dx%d scalar step(): %.0f cycles/sec "
                "(%.2fM node-cycles/sec, wall clock)\n",
                mega_dim, mega_dim, mega_scalar,
                mega_scalar * mega_dim * mega_dim / 1e6);
    std::vector<ScalePoint> mega_sweep;
    double mega_best_eff = 0.0;
    for (int t : thread_counts) {
        core::PhastlaneParams sp = mega;
        sp.shardCols = mega_shard_dim;
        sp.shardRows = mega_shard_dim;
        sp.shardThreads = t;
        ScalePoint pt;
        pt.threads = t;
        const double rate_sharded =
            stepThroughputWith(sp, mega_cycles, rate, wallSeconds);
        pt.seconds = rate_sharded > 0.0
                         ? static_cast<double>(mega_cycles) /
                               rate_sharded
                         : 0.0;
        pt.speedup =
            mega_scalar > 0.0 ? rate_sharded / mega_scalar : 0.0;
        pt.expectedSpeedup = static_cast<double>(
            std::min<unsigned>(static_cast<unsigned>(t), hw));
        pt.efficiency = pt.speedup / pt.expectedSpeedup;
        mega_best_eff = std::max(mega_best_eff, pt.efficiency);
        mega_sweep.push_back(pt);
        std::printf("%dx%d sharded %dx%d @ %2d threads: %7.0f "
                    "cycles/sec (speedup %.2fx, efficiency %.2f of "
                    "%.0fx attainable)\n",
                    mega_dim, mega_dim, mega_shard_dim,
                    mega_shard_dim, t, rate_sharded, pt.speedup,
                    pt.efficiency, pt.expectedSpeedup);
    }

    // 4. Batched multi-sim (DESIGN.md §13): the same 64 default-shape
    // instances advanced serially one-after-another versus quantum-
    // interleaved through one NetworkBatch. Identical per-instance
    // work and results either way; the batch wins by skipping idle
    // infrastructure (launch boards, NIC occupancy planes) across the
    // gang. The default load is a light below-saturation sweep point —
    // the regime multi-sim exists for (sweeps and fault campaigns run
    // dozens of mostly-idle points) and the one where engine overhead,
    // not shared traffic work, decides the outcome.
    const int msim_instances = static_cast<int>(
        opts.raw.getInt("multisim-instances", 64));
    const uint64_t msim_cycles = static_cast<uint64_t>(opts.raw.getInt(
        "multisim-cycles",
        static_cast<int64_t>(opts.quick ? 1500 : 4000)));
    const double msim_rate =
        opts.raw.getDouble("multisim-rate", 0.005);
    // Injection schedules are drawn before the clock starts: traffic
    // generation is common to both arms and benchmarking it would only
    // dilute the engine comparison.
    struct MsimInjection {
        uint32_t cycle;
        NodeId src;
        NodeId dst;
    };
    std::vector<std::vector<MsimInjection>> msim_sched(
        static_cast<size_t>(msim_instances));
    {
        const core::PhastlaneParams sched_params;
        const MeshTopology sched_mesh(sched_params.meshWidth,
                                      sched_params.meshHeight);
        for (int i = 0; i < msim_instances; ++i) {
            Rng rng(7 + i);
            auto &sched = msim_sched[static_cast<size_t>(i)];
            for (uint64_t c = 0; c < msim_cycles; ++c) {
                for (NodeId n = 0; n < sched_mesh.nodeCount(); ++n) {
                    if (!rng.bernoulli(msim_rate))
                        continue;
                    msim_sched[static_cast<size_t>(i)].push_back(
                        MsimInjection{static_cast<uint32_t>(c), n,
                                      traffic::destination(
                                          traffic::Pattern::UniformRandom,
                                          n, sched_mesh, rng)});
                }
            }
            sched.shrink_to_fit();
        }
    }
    // Replay cursor per instance: schedules are cycle-ascending, so
    // each timed cycle injects a contiguous run of the schedule.
    const auto msimInject = [&](core::PhastlaneNetwork &net, int i,
                                size_t &cursor, PacketId &id,
                                uint64_t c) {
        const auto &sched = msim_sched[static_cast<size_t>(i)];
        while (cursor < sched.size() && sched[cursor].cycle == c) {
            Packet p;
            p.id = id++;
            p.src = sched[cursor].src;
            p.dst = sched[cursor].dst;
            p.createdAt = net.now();
            net.inject(p);
            ++cursor;
        }
    };
    // Both arms construct their networks before the clock starts:
    // the comparison is stepping cost, not construction cost.
    const auto msimMakeNets = [&]() {
        std::vector<std::unique_ptr<core::PhastlaneNetwork>> nets;
        for (int i = 0; i < msim_instances; ++i) {
            core::PhastlaneParams p;
            p.seed = 9000 + static_cast<uint64_t>(i);
            nets.push_back(
                std::make_unique<core::PhastlaneNetwork>(p));
        }
        return nets;
    };
    const auto msimSerialSecs = [&]() {
        auto nets = msimMakeNets();
        const double start = cpuSeconds();
        for (int i = 0; i < msim_instances; ++i) {
            core::PhastlaneNetwork &net =
                *nets[static_cast<size_t>(i)];
            size_t cursor = 0;
            PacketId id = 1;
            for (uint64_t c = 0; c < msim_cycles; ++c) {
                msimInject(net, i, cursor, id, c);
                net.step();
            }
        }
        return cpuSeconds() - start;
    };
    const auto msimBatchedSecs = [&]() {
        auto nets = msimMakeNets();
        std::vector<size_t> cursors(
            static_cast<size_t>(msim_instances), 0);
        std::vector<PacketId> ids(
            static_cast<size_t>(msim_instances), 1);
        core::NetworkBatch batch;
        for (int i = 0; i < msim_instances; ++i)
            batch.attach(*nets[static_cast<size_t>(i)]);
        // Same quantum interleave as sim::MultiSim::runGang.
        const uint64_t quantum = static_cast<uint64_t>(opts.raw.getInt(
            "multisim-quantum", sim::MultiSim::kCycleQuantum));
        const double start = cpuSeconds();
        for (uint64_t c = 0; c < msim_cycles; c += quantum) {
            const uint64_t span =
                std::min<uint64_t>(quantum, msim_cycles - c);
            for (int i = 0; i < msim_instances; ++i) {
                for (uint64_t q = 0; q < span; ++q) {
                    msimInject(*nets[static_cast<size_t>(i)], i,
                               cursors[static_cast<size_t>(i)],
                               ids[static_cast<size_t>(i)], c + q);
                    batch.stepInstance(static_cast<size_t>(i));
                }
            }
        }
        const double secs = cpuSeconds() - start;
        batch.detachAll();
        return secs;
    };
    // The box's clock scaling moves even CPU-time throughput by tens
    // of percent between samples, so the gate statistic is the median
    // of per-pair ratios: each serial sample is ratioed against the
    // batched sample taken right next to it (near-identical clock
    // state), and the median across pairs rejects the outlier pairs a
    // frequency step lands in the middle of. The absolute rates
    // reported are each arm's fastest sample.
    double msim_serial_secs = 0.0;
    double msim_batched_secs = 0.0;
    std::vector<double> msim_ratios;
    for (int rep = 0; rep < 3; ++rep) {
        const double s = msimSerialSecs();
        const double b = msimBatchedSecs();
        msim_serial_secs = rep == 0 ? s : std::min(msim_serial_secs, s);
        msim_batched_secs =
            rep == 0 ? b : std::min(msim_batched_secs, b);
        if (b > 0.0)
            msim_ratios.push_back(s / b);
    }
    std::sort(msim_ratios.begin(), msim_ratios.end());
    const double msim_total_cycles =
        static_cast<double>(msim_cycles) * msim_instances;
    const double msim_serial_rate =
        msim_serial_secs > 0.0 ? msim_total_cycles / msim_serial_secs
                               : 0.0;
    const double msim_batched_rate =
        msim_batched_secs > 0.0
            ? msim_total_cycles / msim_batched_secs
            : 0.0;
    const double msim_speedup =
        msim_ratios.empty() ? 0.0
                            : msim_ratios[msim_ratios.size() / 2];
    std::printf("multi-sim %d x 8x8 @ rate %.3f: serial %.0f "
                "cycles/sec, batched %.0f cycles/sec "
                "(speedup %.2fx, CPU time)\n",
                msim_instances, msim_rate, msim_serial_rate,
                msim_batched_rate, msim_speedup);

    // Gate before writing: a failing run must not refresh the
    // baseline it just failed against.
    const std::string baseline = opts.raw.getString("baseline", "");
    if (!baseline.empty()) {
        const double base_step =
            readBaselineKey(baseline, "step_cycles_per_sec", -1.0);
        if (base_step <= 0.0) {
            std::printf("[no usable baseline at %s, gate skipped]\n",
                        baseline.c_str());
        } else {
            const double ratio =
                opts.raw.getDouble("gate-ratio", 0.70);
            std::printf("gate: %.0f cycles/sec vs baseline %.0f "
                        "(%.0f%%, floor %.0f%%)\n",
                        steps_per_sec, base_step,
                        100.0 * steps_per_sec / base_step,
                        100.0 * ratio);
            if (steps_per_sec < base_step * ratio) {
                std::fprintf(stderr,
                             "FAIL: step() throughput regressed "
                             "below %.0f%% of baseline\n",
                             100.0 * ratio);
                return 1;
            }
            // Parallel-efficiency leg: absolute floor plus relative
            // regression against a schema-2 baseline (schema-1 files
            // recorded no efficiency; their sentinel skips the
            // relative check, not the absolute one).
            const double eff_floor =
                opts.raw.getDouble("eff-floor", 0.40);
            const double base_eff = readBaselineKey(
                baseline, "min_parallel_efficiency", -1.0);
            const double eff_need =
                base_eff > 0.0
                    ? std::max(eff_floor, base_eff * ratio)
                    : eff_floor;
            std::printf("gate: min parallel efficiency %.2f "
                        "(floor %.2f%s)\n",
                        min_eff, eff_need,
                        base_eff > 0.0 ? ", baseline-relative" : "");
            if (min_eff < eff_need) {
                std::fprintf(stderr,
                             "FAIL: parallel efficiency %.2f fell "
                             "below floor %.2f\n",
                             min_eff, eff_need);
                return 1;
            }
            // Batched multi-sim leg: the lockstep gang must beat
            // stepping the same instances serially by the floor
            // factor (self-relative — both sides measured this run).
            const double msim_floor =
                opts.raw.getDouble("multisim-floor", 1.3);
            std::printf("gate: multi-sim batched speedup %.2fx "
                        "(floor %.2fx)\n",
                        msim_speedup, msim_floor);
            if (msim_speedup < msim_floor) {
                std::fprintf(stderr,
                             "FAIL: batched multi-sim speedup "
                             "%.2fx fell below floor %.2fx\n",
                             msim_speedup, msim_floor);
                return 1;
            }
        }
    }

    const auto writeJson = [&](const std::string &path) -> bool {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"schema\": 2,\n");
        std::fprintf(f, "  \"quick\": %s,\n",
                     opts.quick ? "true" : "false");
        std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
        std::fprintf(f, "  \"step_cycles_per_sec\": %.1f,\n",
                     steps_per_sec);
        std::fprintf(f, "  \"step_node_cycles_per_sec\": %.1f,\n",
                     steps_per_sec * 64);
        std::fprintf(f, "  \"step_runs\": [");
        for (size_t i = 0; i < step_runs.size(); ++i)
            std::fprintf(f, "%s%.1f", i ? ", " : "", step_runs[i]);
        std::fprintf(f, "],\n");
        std::fprintf(f, "  \"min_parallel_efficiency\": %.3f,\n",
                     min_eff);
        std::fprintf(f, "  \"sweep\": [\n");
        for (size_t i = 0; i < sweep.size(); ++i) {
            const ScalePoint &pt = sweep[i];
            std::fprintf(
                f,
                "    {\"threads\": %d, \"seconds\": %.4f, "
                "\"speedup\": %.3f, \"expected_speedup\": %.0f, "
                "\"efficiency\": %.3f}%s\n",
                pt.threads, pt.seconds, pt.speedup,
                pt.expectedSpeedup, pt.efficiency,
                i + 1 < sweep.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        // Informational 32x32 sharded-step record (schema 2 addition;
        // readBaselineKey skips unknown keys, so old gates still read
        // this file).
        std::fprintf(f, "  \"mega_mesh\": {\n");
        std::fprintf(f,
                     "    \"width\": %d, \"height\": %d, "
                     "\"shard_cols\": %d, \"shard_rows\": %d,\n",
                     mega_dim, mega_dim, mega_shard_dim,
                     mega_shard_dim);
        std::fprintf(f,
                     "    \"scalar_cycles_per_sec\": %.1f,\n",
                     mega_scalar);
        std::fprintf(f,
                     "    \"best_sharded_efficiency\": %.3f,\n",
                     mega_best_eff);
        std::fprintf(f, "    \"sharded\": [\n");
        for (size_t i = 0; i < mega_sweep.size(); ++i) {
            const ScalePoint &pt = mega_sweep[i];
            std::fprintf(
                f,
                "      {\"threads\": %d, \"cycles_per_sec\": %.1f, "
                "\"speedup\": %.3f, \"expected_speedup\": %.0f, "
                "\"efficiency\": %.3f}%s\n",
                pt.threads,
                pt.seconds > 0.0
                    ? static_cast<double>(mega_cycles) / pt.seconds
                    : 0.0,
                pt.speedup, pt.expectedSpeedup, pt.efficiency,
                i + 1 < mega_sweep.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  },\n");
        // Batched multi-sim record (DESIGN.md §13); the speedup is
        // self-relative (serial and batched measured in this run), so
        // the gate holds on any machine.
        std::fprintf(f, "  \"multi_sim\": {\n");
        std::fprintf(f,
                     "    \"instances\": %d, \"width\": 8, "
                     "\"height\": 8, \"cycles\": %llu, "
                     "\"rate\": %.3f,\n",
                     msim_instances,
                     static_cast<unsigned long long>(msim_cycles),
                     msim_rate);
        std::fprintf(f,
                     "    \"serial_cycles_per_sec\": %.1f,\n",
                     msim_serial_rate);
        std::fprintf(f,
                     "    \"batched_cycles_per_sec\": %.1f,\n",
                     msim_batched_rate);
        std::fprintf(f, "    \"batched_speedup\": %.3f\n",
                     msim_speedup);
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("[perf json written to %s]\n", path.c_str());
        return true;
    };

    if (!writeJson(out))
        return 1;

    // Baseline refresh is opt-in only: a gate run must never rewrite
    // the baseline it just measured against as a side effect.
    if (opts.raw.getBool("update-baseline", false)) {
        if (baseline.empty()) {
            std::fprintf(stderr,
                         "--update-baseline requires --baseline\n");
            return 1;
        }
        if (baseline != out && !writeJson(baseline))
            return 1;
        std::printf("[baseline refreshed at %s]\n", baseline.c_str());
    }
    return 0;
}
