#include "core/reliability.hpp"

#include "common/log.hpp"

namespace phastlane::core {

ReliableNic::ReliableNic(Network &net, const ReliableNicOptions &opts)
    : net_(net), opts_(opts)
{
    if (opts_.baseTimeout < 1)
        fatal("ReliableNic: baseTimeout must be >= 1");
    if (opts_.maxRetries < 0 || opts_.backoffShiftCap < 0)
        fatal("ReliableNic: negative retry/backoff configuration");
}

Cycle
ReliableNic::timeoutFor(int attempt) const
{
    const int shift =
        attempt < opts_.backoffShiftCap ? attempt
                                        : opts_.backoffShiftCap;
    return opts_.baseTimeout << shift;
}

bool
ReliableNic::send(const Packet &pkt)
{
    if (isWireId(pkt.id))
        fatal("ReliableNic::send: packet id %llu has the wire flag "
              "bit set",
              static_cast<unsigned long long>(pkt.id));
    const uint64_t seq = nextSeq_;
    Packet wire = pkt;
    wire.id = wireId(seq, 0);
    if (!net_.inject(wire))
        return false;
    ++nextSeq_;
    ++stats_.sends;

    Tracker t;
    t.original = pkt;
    t.sentAt = net_.now();
    t.deadline = t.sentAt + timeoutFor(0);
    t.attempt = 0;
    t.expected = pkt.deliveryCount(net_.nodeCount());
    trackers_.emplace(seq, std::move(t));
    return true;
}

void
ReliableNic::harvestDeliveries()
{
    for (const Delivery &d : net_.deliveries()) {
        if (!isWireId(d.packet.id)) {
            // Traffic injected around the reliability layer passes
            // through untouched.
            deliveries_.push_back(d);
            continue;
        }
        const uint64_t seq = seqOf(d.packet.id);
        auto it = trackers_.find(seq);
        if (it == trackers_.end()) {
            // The tracker already closed (completed or expired); a
            // straggler flight from an earlier attempt landed late.
            ++stats_.late;
            continue;
        }
        Tracker &t = it->second;
        if (!t.delivered.insert(d.node).second) {
            ++stats_.duplicates;
            continue;
        }
        Delivery out = d;
        out.packet = t.original;
        deliveries_.push_back(out);
        if (static_cast<int>(t.delivered.size()) >= t.expected) {
            ++stats_.completed;
            trackers_.erase(it);
        }
    }
}

void
ReliableNic::runTimers()
{
    const Cycle now = net_.now();
    for (auto it = trackers_.begin(); it != trackers_.end();) {
        Tracker &t = it->second;
        if (now < t.deadline) {
            ++it;
            continue;
        }
        ++stats_.timeouts;
        if (t.attempt >= opts_.maxRetries) {
            ++stats_.expired;
            stats_.lostUnits +=
                static_cast<uint64_t>(t.expected)
                - static_cast<uint64_t>(t.delivered.size());
            it = trackers_.erase(it);
            continue;
        }
        Packet wire = t.original;
        wire.id = wireId(it->first, t.attempt + 1);
        if (net_.inject(wire)) {
            ++t.attempt;
            ++stats_.retransmits;
            t.sentAt = now;
            t.deadline = now + timeoutFor(t.attempt);
        } else {
            // Source NIC full: retry the injection next cycle without
            // burning an attempt. Deterministic — depends only on NIC
            // occupancy, which is part of the simulated state.
            t.deadline = now + 1;
        }
        ++it;
    }
}

void
ReliableNic::step()
{
    net_.step();
    afterNetStep();
}

void
ReliableNic::afterNetStep()
{
    deliveries_.clear();
    harvestDeliveries();
    runTimers();
}

uint64_t
ReliableNic::inFlight() const
{
    uint64_t units = 0;
    for (const auto &[seq, t] : trackers_) {
        (void)seq;
        units += static_cast<uint64_t>(t.expected)
                 - static_cast<uint64_t>(t.delivered.size());
    }
    return units;
}

} // namespace phastlane::core
