file(REMOVE_RECURSE
  "CMakeFiles/fig06_max_hops.dir/fig06_max_hops.cpp.o"
  "CMakeFiles/fig06_max_hops.dir/fig06_max_hops.cpp.o.d"
  "fig06_max_hops"
  "fig06_max_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_max_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
