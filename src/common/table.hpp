/**
 * @file
 * Aligned text tables and CSV output for the benchmark harnesses.
 *
 * Every bench binary prints the paper's table/figure data as an aligned
 * text table (for humans) and can optionally mirror it into a CSV file
 * (for plotting).
 */

#ifndef PHASTLANE_COMMON_TABLE_HPP
#define PHASTLANE_COMMON_TABLE_HPP

#include <cstdio>
#include <string>
#include <vector>

namespace phastlane {

/**
 * A simple column-aligned text table, built row by row.
 */
class TextTable
{
  public:
    /** Start a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; missing cells print empty, extra cells widen the
     *  table. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format an integer. */
    static std::string num(int64_t v);

    /** Render to a string with 2-space column gaps and a rule under
     *  the header. */
    std::string render() const;

    /** Render to @p out (default stdout). */
    void print(std::FILE *out = stdout) const;

    /** Write the same data as CSV to @p path; fatal() on I/O error. */
    void writeCsv(const std::string &path) const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace phastlane

#endif // PHASTLANE_COMMON_TABLE_HPP
