/**
 * @file
 * Virtual Circuit Tree Multicasting table tests.
 */

#include <gtest/gtest.h>

#include "electrical/vctm.hpp"

namespace phastlane::electrical {
namespace {

TEST(Vctm, MissReturnsNull)
{
    VctmTable t(8);
    EXPECT_EQ(t.find(3), nullptr);
}

TEST(Vctm, InstallAccumulatesPorts)
{
    VctmTable t(8);
    t.installPort(3, Port::North);
    t.installPort(3, Port::East);
    t.installPort(3, Port::North); // idempotent
    const TreeEntry *e = t.find(3);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->meshPorts,
              (1u << portIndex(Port::North)) |
                  (1u << portIndex(Port::East)));
    EXPECT_FALSE(e->local);
}

TEST(Vctm, InstallLocal)
{
    VctmTable t(8);
    t.installLocal(5);
    const TreeEntry *e = t.find(5);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->local);
    EXPECT_EQ(e->meshPorts, 0);
}

TEST(Vctm, SeparateTreesIndependent)
{
    VctmTable t(8);
    t.installPort(1, Port::North);
    t.installPort(2, Port::South);
    EXPECT_EQ(t.find(1)->meshPorts, 1u << portIndex(Port::North));
    EXPECT_EQ(t.find(2)->meshPorts, 1u << portIndex(Port::South));
    EXPECT_EQ(t.size(), 2u);
}

TEST(Vctm, FifoEvictionAtCapacity)
{
    VctmTable t(2);
    t.installPort(1, Port::North);
    t.installPort(2, Port::North);
    t.installPort(3, Port::North); // evicts tree 1
    EXPECT_EQ(t.find(1), nullptr);
    EXPECT_NE(t.find(2), nullptr);
    EXPECT_NE(t.find(3), nullptr);
    EXPECT_EQ(t.evictions(), 1u);
    EXPECT_EQ(t.size(), 2u);
}

TEST(Vctm, ReinstallAfterEviction)
{
    VctmTable t(1);
    t.installPort(1, Port::North);
    t.installPort(2, Port::East);
    t.installPort(1, Port::South);
    const TreeEntry *e = t.find(1);
    ASSERT_NE(e, nullptr);
    // Fresh entry: the pre-eviction North port is gone.
    EXPECT_EQ(e->meshPorts, 1u << portIndex(Port::South));
}

} // namespace
} // namespace phastlane::electrical
