/**
 * @file
 * The electrical side of a Phastlane router: five buffer queues (N, E,
 * S, W input ports plus the local node queue) and the rotating
 * priority arbiter that re-launches buffered packets (paper Section
 * 2.1.1).
 */

#ifndef PHASTLANE_CORE_ROUTER_HPP
#define PHASTLANE_CORE_ROUTER_HPP

#include <algorithm>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "core/packet.hpp"
#include "core/params.hpp"

namespace phastlane::core {

/** State of one buffered packet. */
enum class EntryState : uint8_t {
    /** Waiting for the arbiter (once eligibleAt is reached). */
    Waiting,
    /** Launched optically; the slot is held until the drop-signal
     *  window of the next cycle resolves. */
    Launched,
};

/** One router-buffer entry. */
struct BufferEntry {
    OpticalPacket pkt;
    EntryState state = EntryState::Waiting;

    /** Earliest cycle the arbiter may launch this entry. */
    Cycle eligibleAt = 0;

    /** Completed launch attempts (drives exponential backoff). */
    int attempts = 0;

    /** Insertion order (age) for oldest-first arbitration. */
    uint64_t seq = 0;
};

/** Identifies a buffer entry for launch-outcome resolution. */
struct EntryRef {
    NodeId router = kInvalidNode;
    Port queue = Port::Local;
    PacketId packet = 0;
};

/**
 * Buffer queues and rotating arbiter of one router.
 */
class RouterBuffers
{
  public:
    RouterBuffers(NodeId self, const PhastlaneParams &params);

    NodeId self() const { return self_; }

    /** True when queue @p q can accept another packet. */
    bool hasSpace(Port q) const;

    /** Free slots in queue @p q (INT_MAX when infinite). */
    int freeSlots(Port q) const;

    /** Current occupancy of queue @p q. */
    size_t occupancy(Port q) const;

    /** Total occupancy across all five queues. */
    size_t totalOccupancy() const;

    /**
     * Insert a received packet into queue @p q; the caller must have
     * checked hasSpace(). @p eligible_at is the first cycle the
     * arbiter may re-launch it.
     */
    void push(Port q, OpticalPacket pkt, Cycle eligible_at);

    /**
     * Launch arbitration: pick up to four launch candidates for
     * distinct output ports among the Waiting entries whose
     * eligibleAt has passed, using the configured policy (rotating
     * priority over the queues, or globally oldest-first).
     * @p desired_port yields the output port an entry needs from this
     * router.
     *
     * Selected entries are flipped to Launched. Returns references to
     * the selected entries paired with their output port.
     */
    template <typename DesiredPortFn>
    std::vector<std::pair<BufferEntry *, Port>>
    arbitrate(Cycle now, DesiredPortFn &&desired_port);

    /** Resolve a prior launch: release the entry on success. */
    void releaseLaunched(PacketId id);

    /**
     * Resolve a prior launch that was dropped downstream: restore the
     * entry to Waiting with the (possibly tap-reduced) packet state
     * and the retry eligibility cycle.
     */
    void restoreDropped(PacketId id, OpticalPacket updated,
                        Cycle eligible_at);

    /** Find the queue holding the Launched entry for @p id. */
    BufferEntry *findLaunched(PacketId id, Port *queue_out = nullptr);

  private:
    NodeId self_;
    int capacity_; // <= 0: infinite
    int launchesPerQueue_;
    bool sharedPool_;
    BufferArbitration policy_;
    std::array<std::deque<BufferEntry>, kAllPorts> queues_;
    int rotate_ = 0;
    uint64_t nextSeq_ = 0;
};

template <typename DesiredPortFn>
std::vector<std::pair<BufferEntry *, Port>>
RouterBuffers::arbitrate(Cycle now, DesiredPortFn &&desired_port)
{
    std::vector<std::pair<BufferEntry *, Port>> launches;
    bool port_taken[kMeshPorts] = {false, false, false, false};

    auto try_launch = [&](BufferEntry &entry, int &queue_budget) {
        if (queue_budget <= 0)
            return;
        if (entry.state != EntryState::Waiting ||
            entry.eligibleAt > now) {
            return;
        }
        const Port out = desired_port(entry.pkt);
        if (out == Port::Local || port_taken[portIndex(out)])
            return;
        port_taken[portIndex(out)] = true;
        entry.state = EntryState::Launched;
        launches.emplace_back(&entry, out);
        --queue_budget;
    };

    if (policy_ == BufferArbitration::OldestFirst) {
        // Globally oldest eligible entry first (extension).
        std::vector<std::pair<uint64_t, BufferEntry *>> candidates;
        for (auto &queue : queues_) {
            for (auto &entry : queue) {
                if (entry.state == EntryState::Waiting &&
                    entry.eligibleAt <= now) {
                    candidates.emplace_back(entry.seq, &entry);
                }
            }
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        int budget = 4; // one launch per output port at most
        for (auto &[seq, entry] : candidates)
            try_launch(*entry, budget);
    } else {
        // Rotating pointer over the five queues; within a queue,
        // oldest-first; at most launchesPerQueue_ per queue.
        for (int qi = 0; qi < kAllPorts; ++qi) {
            const Port q = portFromIndex((rotate_ + qi) % kAllPorts);
            int queue_budget = launchesPerQueue_;
            for (auto &entry : queues_[portIndex(q)])
                try_launch(entry, queue_budget);
        }
        rotate_ = (rotate_ + 1) % kAllPorts;
    }
    return launches;
}

} // namespace phastlane::core

#endif // PHASTLANE_CORE_ROUTER_HPP
