/**
 * @file
 * Google-benchmark microbenchmarks of the bit-plane wavefront kernels
 * (DESIGN.md §11) against their scalar per-(router, port) reference
 * loops: claim resolution (win = once & ~multi & ~claimed) and
 * wavefront propagation (one-hop masked shift). Run over dense,
 * sparse, and adversarial request patterns at two mesh sizes; the
 * reported ns/op is one full resolution or one four-direction
 * propagation sweep of the whole mesh.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/bitplane.hpp"

namespace {

using namespace phastlane;
using namespace phastlane::core;

enum Pattern : int {
    /** Every (router, port) bit set: peak word-parallel advantage. */
    Dense = 0,
    /** ~5% of bits set: the typical low-load wavefront. */
    Sparse = 1,
    /** Alternating bits with heavy multi/claimed overlap: worst case
     *  for branch prediction in the scalar loop, no shortcut for the
     *  word-parallel one. */
    Adversarial = 2,
};

const char *
patternName(int p)
{
    switch (p) {
    case Dense: return "dense";
    case Sparse: return "sparse";
    default: return "adversarial";
    }
}

void
fillPlanes(PortPlanes &planes, int nodes, int pattern, Rng &rng)
{
    planes.clear();
    for (int n = 0; n < nodes; ++n) {
        for (int pi = 0; pi < kMeshPorts; ++pi) {
            bool set = false;
            switch (pattern) {
            case Dense: set = true; break;
            case Sparse: set = rng.bernoulli(0.05); break;
            default: set = ((n + pi) & 1) != 0; break;
            }
            if (set)
                planes.set(static_cast<NodeId>(n),
                           portFromIndex(pi));
        }
    }
}

/** Unpack one plane set into flat bool arrays for the scalar loop. */
void
unpack(const PortPlanes &planes, int nodes, std::vector<uint8_t> &out)
{
    out.assign(static_cast<size_t>(nodes) * kMeshPorts, 0);
    for (int n = 0; n < nodes; ++n)
        for (int pi = 0; pi < kMeshPorts; ++pi)
            out[static_cast<size_t>(n) * kMeshPorts + pi] =
                planes.test(static_cast<NodeId>(n),
                            portFromIndex(pi));
}

/**
 * Scalar claim resolution: the per-(router, port) loop the seed
 * engine runs, over flat bool arrays.
 */
void
BM_ClaimResolveScalar(benchmark::State &state)
{
    const int width = static_cast<int>(state.range(1));
    const int nodes = width * width;
    Rng rng(42);
    PortPlanes once_p(nodes), multi_p(nodes), claimed_p(nodes);
    fillPlanes(once_p, nodes, static_cast<int>(state.range(0)), rng);
    fillPlanes(multi_p, nodes, static_cast<int>(state.range(0)), rng);
    fillPlanes(claimed_p, nodes, static_cast<int>(state.range(0)),
               rng);
    std::vector<uint8_t> once, multi, claimed;
    unpack(once_p, nodes, once);
    unpack(multi_p, nodes, multi);
    unpack(claimed_p, nodes, claimed);
    std::vector<uint8_t> win(once.size());
    for (auto _ : state) {
        for (size_t i = 0; i < win.size(); ++i)
            win[i] = once[i] && !multi[i] && !claimed[i];
        benchmark::DoNotOptimize(win.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(win.size()));
    state.SetLabel(patternName(static_cast<int>(state.range(0))));
}

/** Word-parallel claim resolution over the same bit content. */
void
BM_ClaimResolveBitplane(benchmark::State &state)
{
    const int width = static_cast<int>(state.range(1));
    const int nodes = width * width;
    Rng rng(42);
    PortPlanes once(nodes), multi(nodes), claimed(nodes), win(nodes);
    fillPlanes(once, nodes, static_cast<int>(state.range(0)), rng);
    fillPlanes(multi, nodes, static_cast<int>(state.range(0)), rng);
    fillPlanes(claimed, nodes, static_cast<int>(state.range(0)), rng);
    const int words = win.words();
    for (auto _ : state) {
        for (int pi = 0; pi < kMeshPorts; ++pi) {
            const Port p = portFromIndex(pi);
            bitplane::andnot2(once.plane(p), multi.plane(p),
                              claimed.plane(p), win.plane(p), words);
        }
        benchmark::DoNotOptimize(win.plane(Port::North));
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(nodes) * kMeshPorts);
    state.SetLabel(patternName(static_cast<int>(state.range(0))));
}

/**
 * Scalar propagation: move every set bit one hop in each direction
 * with per-node coordinate arithmetic (the seed engine's inner loop).
 */
void
BM_PropagateScalar(benchmark::State &state)
{
    const int width = static_cast<int>(state.range(1));
    const int nodes = width * width;
    Rng rng(43);
    PortPlanes src_p(nodes);
    fillPlanes(src_p, nodes, static_cast<int>(state.range(0)), rng);
    std::vector<uint8_t> src;
    unpack(src_p, nodes, src);
    std::vector<uint8_t> dst(src.size());
    for (auto _ : state) {
        std::fill(dst.begin(), dst.end(), 0);
        for (int n = 0; n < nodes; ++n) {
            const int x = n % width, y = n / width;
            for (int pi = 0; pi < kMeshPorts; ++pi) {
                if (!src[static_cast<size_t>(n) * kMeshPorts + pi])
                    continue;
                int nx = x, ny = y;
                switch (portFromIndex(pi)) {
                case Port::North: ++ny; break;
                case Port::South: --ny; break;
                case Port::East: ++nx; break;
                case Port::West: --nx; break;
                default: break;
                }
                if (nx < 0 || nx >= width || ny < 0 || ny >= width)
                    continue;
                dst[static_cast<size_t>(ny * width + nx) * kMeshPorts +
                    pi] = 1;
            }
        }
        benchmark::DoNotOptimize(dst.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(nodes) * kMeshPorts);
    state.SetLabel(patternName(static_cast<int>(state.range(0))));
}

/** Masked-shift propagation: four shiftToward sweeps per iteration. */
void
BM_PropagateBitplane(benchmark::State &state)
{
    const int width = static_cast<int>(state.range(1));
    const int nodes = width * width;
    Rng rng(43);
    BitPlaneMesh mesh(width, width);
    PortPlanes src(nodes), dst(nodes);
    fillPlanes(src, nodes, static_cast<int>(state.range(0)), rng);
    for (auto _ : state) {
        for (int pi = 0; pi < kMeshPorts; ++pi) {
            const Port p = portFromIndex(pi);
            mesh.shiftToward(p, src.plane(p), dst.plane(p));
        }
        benchmark::DoNotOptimize(dst.plane(Port::North));
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(nodes) * kMeshPorts);
    state.SetLabel(patternName(static_cast<int>(state.range(0))));
}

void
allCases(benchmark::internal::Benchmark *b)
{
    for (int pattern : {Dense, Sparse, Adversarial})
        for (int width : {8, 32}) // 1-word and 16-word planes
            b->Args({pattern, width});
}

BENCHMARK(BM_ClaimResolveScalar)->Apply(allCases);
BENCHMARK(BM_ClaimResolveBitplane)->Apply(allCases);
BENCHMARK(BM_PropagateScalar)->Apply(allCases);
BENCHMARK(BM_PropagateBitplane)->Apply(allCases);

} // namespace

BENCHMARK_MAIN();
