/**
 * @file
 * Event counters of the Phastlane network consumed by the optical
 * power model and the statistics reports.
 */

#ifndef PHASTLANE_CORE_EVENTS_HPP
#define PHASTLANE_CORE_EVENTS_HPP

#include <cstdint>

namespace phastlane::core {

/**
 * Cumulative activity counters; all are per whole-network totals.
 */
struct OpticalEvents {
    /** Optical launches (modulator bank activations), including
     *  retransmissions. */
    uint64_t launches = 0;

    /** Router pass-throughs (turn or straight transit). */
    uint64_t passTraversals = 0;

    /** Full packet receptions (blocked, interim, or final). */
    uint64_t receives = 0;

    /** Multicast power-tap deliveries. */
    uint64_t tapReceives = 0;

    /** Electrical buffer writes / reads. */
    uint64_t bufferWrites = 0;
    uint64_t bufferReads = 0;

    /** Packets dropped (buffer full). */
    uint64_t drops = 0;

    /** Return-path hops signaled for drops. */
    uint64_t dropSignalHops = 0;

    /** Launches that were retransmissions of a dropped packet. */
    uint64_t retransmissions = 0;

    /** Router-cycles elapsed (for static/leakage power). */
    uint64_t routerCycles = 0;

    // --- Fault accounting (DESIGN.md §10). All zero when every fault
    // rate is zero.

    /** Delivery units permanently lost to injected faults (missed
     *  receives, lost drop signals, dead routers/sources). */
    uint64_t lostUnits = 0;

    /** Packet-Dropped return signals lost in flight. */
    uint64_t dropSignalsLost = 0;

    /** Pass resonator mis-turns (packet diverted into the buffer). */
    uint64_t faultMisTurns = 0;

    /** Receive/tap resonator failures (delivery unit lost). */
    uint64_t faultMissedReceives = 0;

    /** Drop signals whose dropper Node ID arrived corrupted. */
    uint64_t faultCorruptions = 0;

    /** Arrivals black-holed at hard-failed routers. */
    uint64_t faultDeadArrivals = 0;

    /** Tap deliveries suppressed as duplicates (dedupBelow). */
    uint64_t duplicatesSuppressed = 0;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_EVENTS_HPP
