/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Simulations must be reproducible across platforms and standard
 * library versions, so we implement xoshiro256** (Blackman & Vigna)
 * seeded through SplitMix64 rather than relying on std::mt19937
 * distributions (whose std::uniform_*_distribution results are not
 * portable).
 */

#ifndef PHASTLANE_COMMON_RNG_HPP
#define PHASTLANE_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace phastlane {

/**
 * xoshiro256** PRNG with SplitMix64 seeding and portable distribution
 * helpers.
 */
class Rng
{
  public:
    /** Seed deterministically from a 64-bit value. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Bernoulli trial with probability @p p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Exponentially distributed value with given mean (> 0). */
    double exponential(double mean);

    /**
     * Geometric number of failures before the first success with
     * success probability @p p in (0, 1]; returns 0 when p >= 1.
     */
    uint64_t geometric(double p);

    /** Fork a statistically independent child stream. */
    Rng fork();

  private:
    std::array<uint64_t, 4> state_;
};

} // namespace phastlane

#endif // PHASTLANE_COMMON_RNG_HPP
