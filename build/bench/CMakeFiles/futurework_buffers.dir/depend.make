# Empty dependencies file for futurework_buffers.
# This may be replaced when dependencies are built.
