#include "common/geometry.hpp"

#include "common/log.hpp"

namespace phastlane {

MeshTopology::MeshTopology(int width, int height)
    : width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        fatal("mesh dimensions must be positive (got %dx%d)",
              width, height);
}

Coord
MeshTopology::coordOf(NodeId n) const
{
    PL_ASSERT(valid(n), "node %d out of range", n);
    return Coord{static_cast<int>(n) % width_,
                 static_cast<int>(n) / width_};
}

NodeId
MeshTopology::nodeAt(Coord c) const
{
    PL_ASSERT(inside(c), "coord (%d,%d) out of range", c.x, c.y);
    return static_cast<NodeId>(c.y * width_ + c.x);
}

bool
MeshTopology::inside(Coord c) const
{
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

NodeId
MeshTopology::neighbor(NodeId n, Port dir) const
{
    Coord c = coordOf(n);
    switch (dir) {
      case Port::North: c.y += 1; break;
      case Port::South: c.y -= 1; break;
      case Port::East: c.x += 1; break;
      case Port::West: c.x -= 1; break;
      default:
        panic("neighbor() called with non-mesh port");
    }
    return inside(c) ? nodeAt(c) : kInvalidNode;
}

int
MeshTopology::hopDistance(NodeId a, NodeId b) const
{
    const Coord ca = coordOf(a);
    const Coord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

std::vector<Port>
MeshTopology::xyRoute(NodeId src, NodeId dst) const
{
    const Coord s = coordOf(src);
    const Coord d = coordOf(dst);
    std::vector<Port> route;
    route.reserve(static_cast<size_t>(hopDistance(src, dst)));
    // X first.
    for (int x = s.x; x < d.x; ++x)
        route.push_back(Port::East);
    for (int x = s.x; x > d.x; --x)
        route.push_back(Port::West);
    // Then Y.
    for (int y = s.y; y < d.y; ++y)
        route.push_back(Port::North);
    for (int y = s.y; y > d.y; --y)
        route.push_back(Port::South);
    return route;
}

std::vector<NodeId>
MeshTopology::xyPath(NodeId src, NodeId dst) const
{
    std::vector<NodeId> path;
    NodeId at = src;
    for (Port dir : xyRoute(src, dst)) {
        at = neighbor(at, dir);
        PL_ASSERT(at != kInvalidNode, "XY route left the mesh");
        path.push_back(at);
    }
    return path;
}

Port
MeshTopology::xyFirstHop(NodeId at, NodeId dst) const
{
    const Coord a = coordOf(at);
    const Coord d = coordOf(dst);
    if (a.x < d.x)
        return Port::East;
    if (a.x > d.x)
        return Port::West;
    if (a.y < d.y)
        return Port::North;
    if (a.y > d.y)
        return Port::South;
    return Port::Local;
}

} // namespace phastlane
