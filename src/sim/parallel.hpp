/**
 * @file
 * Compatibility alias: the thread pool moved to common/parallel.hpp so
 * the core simulator (plcore, which cannot depend on plsim) can run
 * its sharded step() on it. Existing sim-layer code keeps using the
 * phastlane::sim names.
 */

#ifndef PHASTLANE_SIM_PARALLEL_HPP
#define PHASTLANE_SIM_PARALLEL_HPP

#include "common/parallel.hpp"

namespace phastlane::sim {

using phastlane::ThreadPool;
using phastlane::derivePointSeed;
using phastlane::parallelFor;
using phastlane::resolveThreadCount;

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_PARALLEL_HPP
