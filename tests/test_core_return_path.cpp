/**
 * @file
 * Drop-signal return-path tests (paper Section 2.1.2 / footnote 4).
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "core/network.hpp"
#include "core/observer.hpp"
#include "core/return_path.hpp"

namespace phastlane::core {
namespace {

/** Records every drop grouped by (cycle, launch router). */
struct DropRecorder : StepObserver {
    Cycle cycle = 0;
    std::map<std::pair<Cycle, NodeId>, int> byLaunchRouter;

    void onCycleBegin(Cycle c) override { cycle = c; }
    void onDrop(const OpticalPacket &, NodeId, NodeId launch_router,
                int, bool) override
    {
        ++byLaunchRouter[{cycle, launch_router}];
    }
};

TEST(ReturnPath, RegisterAndSignalCountsHops)
{
    ReturnPathRegistry reg(64);
    reg.beginCycle();
    // Packet: launch at 0, passes routers 1 and 2 eastward, dropped
    // at 3.
    std::vector<ReturnHop> path = {
        {1, Port::West, Port::East},
        {2, Port::West, Port::East},
    };
    for (const auto &h : path)
        reg.registerHop(h.router, h.packetIn, h.packetOut);
    EXPECT_EQ(reg.latchedHops(), 2u);
    // Signal travels 3 -> 2 -> 1 -> 0: three links.
    EXPECT_EQ(reg.signalDrop(path), 3);
    EXPECT_EQ(reg.claimedLinks(), 2u);
}

TEST(ReturnPath, OneHopDrop)
{
    ReturnPathRegistry reg(64);
    reg.beginCycle();
    // Dropped at the first router entered: no pass-through hops, the
    // signal still travels one link back to the launch router.
    EXPECT_EQ(reg.signalDrop({}), 1);
}

TEST(ReturnPath, BeginCycleClearsState)
{
    ReturnPathRegistry reg(64);
    reg.beginCycle();
    reg.registerHop(5, Port::West, Port::East);
    reg.beginCycle();
    EXPECT_EQ(reg.latchedHops(), 0u);
    // The connection can be re-latched after the cycle boundary.
    reg.registerHop(5, Port::West, Port::East);
    EXPECT_EQ(reg.latchedHops(), 1u);
}

TEST(ReturnPath, DoubleLatchOnOnePortDies)
{
    ReturnPathRegistry reg(64);
    reg.beginCycle();
    reg.registerHop(5, Port::West, Port::East);
    // An output port carries at most one packet per cycle, so a
    // second latch is a simulator bug.
    EXPECT_DEATH(reg.registerHop(5, Port::South, Port::East),
                 "return connection");
}

TEST(ReturnPath, OverlappingSignalsDie)
{
    ReturnPathRegistry reg(64);
    reg.beginCycle();
    std::vector<ReturnHop> path = {{7, Port::South, Port::North}};
    reg.registerHop(7, Port::South, Port::North);
    EXPECT_EQ(reg.signalDrop(path), 2);
    EXPECT_DEATH(reg.signalDrop(path), "overlapping");
}

TEST(ReturnPath, DistinctPortsDoNotConflict)
{
    ReturnPathRegistry reg(64);
    reg.beginCycle();
    std::vector<ReturnHop> a = {{7, Port::South, Port::North}};
    std::vector<ReturnHop> b = {{7, Port::West, Port::East}};
    reg.registerHop(7, Port::South, Port::North);
    reg.registerHop(7, Port::West, Port::East);
    EXPECT_EQ(reg.signalDrop(a), 2);
    EXPECT_EQ(reg.signalDrop(b), 2);
    EXPECT_EQ(reg.claimedLinks(), 2u);
}

TEST(ReturnPath, NetworkAccountsSignalHopsUnderDrops)
{
    // End to end: with tiny buffers the network must drop; the
    // drop-signal hop count accumulates and footnote 4's uniqueness
    // invariant holds throughout (the registry panics otherwise).
    PhastlaneParams p;
    p.routerBufferEntries = 1;
    PhastlaneNetwork net(p);
    PacketId id = 1;
    for (NodeId src = 0; src < 64; src += 2) {
        Packet b;
        b.id = id++;
        b.src = src;
        b.broadcast = true;
        ASSERT_TRUE(net.inject(b));
    }
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 200000)
        net.step();
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_GT(net.phastlaneCounters().drops, 0u);
    // Every drop signals at least one hop, at most the hop limit.
    EXPECT_GE(net.events().dropSignalHops,
              net.phastlaneCounters().drops);
    EXPECT_LE(net.events().dropSignalHops,
              net.phastlaneCounters().drops *
                  static_cast<uint64_t>(p.maxHopsPerCycle));
}

TEST(ReturnPath, ConvergentDropsOnOneSourceInOneCycle)
{
    // A broadcast source launches several branches per cycle; under
    // depth-1 buffers multiple branches get dropped in the SAME cycle
    // and their return signals all converge on the one launch router.
    // Footnote 4 guarantees the signals use disjoint links (the
    // registry panics otherwise); the source must count every one of
    // them and retransmit each dropped branch exactly once.
    PhastlaneParams p;
    p.routerBufferEntries = 1;
    PhastlaneNetwork net(p);
    DropRecorder rec;
    net.setObserver(&rec);
    PacketId id = 1;
    for (NodeId src = 0; src < 64; ++src) {
        Packet b;
        b.id = id++;
        b.src = src;
        b.broadcast = true;
        ASSERT_TRUE(net.inject(b));
    }
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 200000)
        net.step();
    ASSERT_EQ(net.inFlight(), 0u);

    int convergent = 0;
    for (const auto &[key, drops] : rec.byLaunchRouter)
        if (drops >= 2)
            ++convergent;
    EXPECT_GT(convergent, 0)
        << "storm never produced two same-cycle drops on one source";
    // Every drop was retransmitted: nothing lost, nothing doubled.
    EXPECT_GT(net.phastlaneCounters().drops, 0u);
    EXPECT_EQ(net.phastlaneCounters().drops,
              net.phastlaneCounters().retransmissions);
    EXPECT_EQ(net.counters().deliveries, 64u * 63u);
}

} // namespace
} // namespace phastlane::core
