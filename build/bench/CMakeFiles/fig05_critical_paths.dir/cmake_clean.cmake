file(REMOVE_RECURSE
  "CMakeFiles/fig05_critical_paths.dir/fig05_critical_paths.cpp.o"
  "CMakeFiles/fig05_critical_paths.dir/fig05_critical_paths.cpp.o.d"
  "fig05_critical_paths"
  "fig05_critical_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_critical_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
