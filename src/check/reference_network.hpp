/**
 * @file
 * ReferenceNetwork: a slow, obviously-correct reimplementation of the
 * Phastlane semantics (paper Sections 2.1-2.4), used as the
 * differential oracle for the optimized wavefront in core/network.cpp
 * (DESIGN.md §7).
 *
 * Design rules:
 *  - Zero shared code with the optimized wavefront. This file reuses
 *    only the spec-level foundations both implementations are defined
 *    against (Packet, the Network interface, MeshTopology for XY
 *    routes, Rng) and reimplements everything Phastlane-specific:
 *    broadcast splitting, interim-node placement, the rotating /
 *    oldest-first launch arbiters, the substep wavefront with
 *    straight-over-turn priority, DAMQ buffer accounting, drop
 *    signaling and retransmission.
 *  - Clarity over speed: plain std::map/std::set claim tables, one
 *    explicit hop per substep, no scratch reuse. Routes are recomputed
 *    from the mesh at every launch instead of carrying predecoded
 *    control groups.
 *  - Cycle-accurate lockstep: on identical injection streams it must
 *    match PhastlaneNetwork's per-cycle delivery sets and every
 *    counter, so the event-processing order within a cycle mirrors the
 *    documented arbitration order (routers ascending, contested ports
 *    in (router, port) order, arrival order within a port).
 *
 * Not modeled: WavefrontModel::GlobalPriority (an idealized ablation;
 * the invariant checker covers those runs). Construction fatal()s if
 * it is requested.
 */

#ifndef PHASTLANE_CHECK_REFERENCE_NETWORK_HPP
#define PHASTLANE_CHECK_REFERENCE_NETWORK_HPP

#include <array>
#include <deque>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "core/events.hpp"
#include "core/network.hpp"
#include "core/params.hpp"
#include "net/network.hpp"

namespace phastlane::check {

/**
 * Independent reimplementation of the paper's broadcast split (one
 * multicast branch per column and Y-direction, the turn router on the
 * north branch, Section 2.1.4). Each inner vector is one branch's
 * delivery targets in path order. Must agree with
 * core::splitBroadcast; test_check_reference cross-validates.
 */
std::vector<std::vector<NodeId>>
referenceBroadcastBranches(const MeshTopology &mesh, NodeId src);

/**
 * The reference Phastlane network. Implements the same Network
 * interface and exposes the same counter groups as PhastlaneNetwork
 * so the differential driver can diff them field by field.
 */
class ReferenceNetwork : public Network
{
  public:
    explicit ReferenceNetwork(const core::PhastlaneParams &params);

    /** True when the reference models this configuration. */
    static bool supports(const core::PhastlaneParams &params);

    // Network interface.
    int nodeCount() const override { return mesh_.nodeCount(); }
    const MeshTopology &mesh() const override { return mesh_; }
    Cycle now() const override { return cycle_; }
    bool nicHasSpace(NodeId n) const override;
    bool inject(const Packet &pkt) override;
    void step() override;
    const std::vector<Delivery> &deliveries() const override
    {
        return deliveries_;
    }
    uint64_t inFlight() const override { return outstanding_; }
    const NetworkCounters &counters() const override
    {
        return counters_;
    }

    // Counter mirrors of PhastlaneNetwork, for the differential diff.
    const core::PhastlaneCounters &phastlaneCounters() const
    {
        return pl_;
    }
    const core::OpticalEvents &events() const { return events_; }
    uint64_t bufferedPackets() const;
    uint64_t nicQueuedPackets() const;

  private:
    /** One unicast packet or multicast branch, spec-level state. */
    struct RefPacket {
        Packet base;
        uint64_t branchId = 0;
        NodeId finalDst = kInvalidNode;
        bool multicast = false;
        /** Unserved multicast targets in path order (the last one is
         *  finalDst until served). */
        std::deque<NodeId> taps;
        /** Absolute index (in the branch's original tap list) of
         *  taps.front(); advanced on every pop so fault draws and the
         *  dedupBelow watermark use the same indices as the optimized
         *  network's tap cursor. */
        uint32_t tapIndex = 0;
        /** Duplicate-suppression watermark (dropper-ID corruption);
         *  taps with absolute index below it were already served. */
        uint32_t dedupBelow = 0;
        /** AgeBoost promotion, recomputed at every launch from the
         *  entry's residence age; ranks as straight in propagate(). */
        bool boosted = false;
        Cycle acceptedAt = 0;
        Cycle firstInjectedAt = kNeverCycle;
    };

    /** One occupied router-buffer slot. */
    struct RefEntry {
        RefPacket pkt;
        bool launched = false; ///< slot held awaiting drop resolution
        Cycle eligibleAt = 0;
        /** Cycle the packet first became launchable here; preserved
         *  across drop/retry so AgeBoost sees total residence. */
        Cycle enqueuedAt = 0;
        int attempts = 0;
        uint64_t seq = 0; ///< router-local insertion order (age)
    };

    /** The five buffer queues of one router. */
    struct RefRouter {
        std::array<std::vector<RefEntry>, kAllPorts> queues;
        int rotate = 0;
        uint64_t nextSeq = 0;
        /** Per-source admission bucket (TokenBucket policy); consumed
         *  for local-queue launches only, in scan order — the exact
         *  sequence the optimized RouterBuffers consumes. */
        core::AdmissionBucket bucket;
    };

    /** A packet in optical transit this cycle. */
    struct RefFlight {
        RefPacket pkt;
        NodeId launchRouter = kInvalidNode;
        /** Routers entered, launch router excluded; recomputed from
         *  the mesh XY route at launch. */
        std::vector<NodeId> path;
        /** Output direction taken at the launch router (dirs[0]) and
         *  at each path node i (dirs[i+1]). */
        std::vector<Port> dirs;
        size_t idx = 0;     ///< current position in path
        size_t stopIdx = 0; ///< interim or final node index in path
        /** (router, out port) pass-throughs this cycle; the reverse
         *  connections a drop signal would use. */
        std::vector<std::pair<NodeId, Port>> crossed;
    };

    /** Deferred resolution of one launch (applied next cycle). */
    struct RefOutcome {
        NodeId holder = kInvalidNode;
        uint64_t branchId = 0;
        bool dropped = false;
        RefPacket updated; ///< tap-reduced state when dropped
    };

    int freeSlots(NodeId router, Port q) const;
    bool hasSpace(NodeId router, Port q) const
    {
        return freeSlots(router, q) > 0;
    }
    void pushEntry(NodeId router, Port q, RefPacket pkt,
                   Cycle eligible_at);
    Cycle dropRetryCycle(int attempts);

    void resolveOutcomes();
    void nicToLocalQueues();
    std::vector<RefFlight> launchPhase();
    void propagate(std::vector<RefFlight> flights);

    /** Tap / interim / final handling on entering a router; returns
     *  true when the flight terminated there. */
    bool handleArrival(RefFlight &f);
    void receiveOrDrop(RefFlight &f, bool interim);
    void deliver(const RefPacket &pkt, NodeId node);

    /** Delivery units of @p pkt not yet delivered (mirror of the
     *  optimized network's accounting). */
    int unitsOutstanding(const RefPacket &pkt) const;
    /** Account @p units permanently lost to an injected fault. */
    void loseUnits(int units);

    bool claimed(NodeId router, Port out) const;
    void claim(NodeId router, Port out);

    core::PhastlaneParams params_;
    MeshTopology mesh_;
    Rng rng_;
    Cycle cycle_ = 0;

    std::vector<std::deque<RefPacket>> nics_;
    std::vector<RefRouter> routers_;
    /** Hard-failed routers, drawn at construction exactly as in
     *  PhastlaneNetwork (same faultRoll keying). */
    std::vector<uint8_t> failed_;
    std::vector<RefOutcome> pendingOutcomes_;
    std::vector<Delivery> deliveries_;

    /** Output ports carrying a packet this cycle (launch or pass). */
    std::vector<std::pair<NodeId, int>> claimedPorts_;
    /** Reverse links claimed by drop signals this cycle (footnote 4:
     *  must be unique). */
    std::vector<std::pair<NodeId, int>> dropSignalLinks_;

    NetworkCounters counters_;
    core::PhastlaneCounters pl_;
    core::OpticalEvents events_;
    uint64_t outstanding_ = 0;
    uint64_t nextBranchId_ = 1;
};

} // namespace phastlane::check

#endif // PHASTLANE_CHECK_REFERENCE_NETWORK_HPP
