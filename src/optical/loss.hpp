/**
 * @file
 * Component-wise optical loss budget.
 *
 * The paper's Section 3.2 argues that waveguide crossings dominate the
 * insertion loss of a Phastlane path and trades crossing efficiency
 * against wavelength count and hop reach. This module itemizes a
 * path's loss in dB -- crossings, multicast power taps, bends,
 * coupler/modulator insertion -- so the peak-power model (Fig 7) and
 * the design explorer can report where the budget goes.
 */

#ifndef PHASTLANE_OPTICAL_LOSS_HPP
#define PHASTLANE_OPTICAL_LOSS_HPP

#include <string>
#include <vector>

#include "optical/devices.hpp"

namespace phastlane::optical {

/** One itemized loss contribution. */
struct LossItem {
    std::string name;
    double db = 0.0;
};

/** An itemized path loss budget. */
struct LossBudget {
    std::vector<LossItem> items;

    double totalDb() const;

    /** Linear power factor 10^(total/10) the laser must overcome. */
    double powerFactor() const;
};

/**
 * Per-component loss constants. Crossing loss derives from the
 * crossing efficiency; the remaining constants split the paper's
 * fixed path loss into its physical parts (they sum to
 * WaveguideConstants::fixedPathLossDb for the default configuration).
 */
struct LossConstants {
    /** Fiber/laser-to-chip coupler. [dB] */
    double couplerDb = 1.0;

    /** Modulator insertion. [dB] */
    double modulatorInsertionDb = 1.5;

    /** Receive-side drop filter. [dB] */
    double dropFilterDb = 1.5;

    /** Per 90-degree bend. [dB] */
    double bendDb = 0.5;

    /** Bends on a worst-case path (launch + one turn + receive). */
    int worstCaseBends = 2;

    /** Per multicast power tap (fraction extracted along the way). */
    double tapDb = 0.25;

    /** Fixed parts summed (must match fixedPathLossDb with the
     *  default four taps). */
    double fixedTotalDb(int taps) const;
};

/**
 * Builds itemized loss budgets for worst-case Phastlane paths.
 */
class LossModel
{
  public:
    explicit LossModel(const PacketFormat &format = {},
                       const WaveguideConstants &wg = {},
                       const LossConstants &constants = {});

    /**
     * Worst-case budget for a @p max_hops path at @p wavelengths -way
     * WDM and the given crossing @p efficiency, with @p taps multicast
     * taps en route.
     */
    LossBudget worstCasePath(double efficiency, int wavelengths,
                             int max_hops, int taps = 4) const;

    /** Crossings contribution only. [dB] */
    double crossingsDb(double efficiency, int wavelengths,
                       int max_hops) const;

    const LossConstants &constants() const { return constants_; }

  private:
    PacketFormat format_;
    WaveguideConstants wg_;
    LossConstants constants_;
};

} // namespace phastlane::optical

#endif // PHASTLANE_OPTICAL_LOSS_HPP
