/**
 * @file
 * 2D mesh topology: node/coordinate mapping, neighbor lookup, and
 * dimension-order (XY) route computation.
 *
 * Both the Phastlane optical network and the electrical baseline are
 * 2D meshes with deterministic dimension-order routing; this class is
 * the single source of truth for the geometry so that the two
 * simulators route packets identically.
 */

#ifndef PHASTLANE_COMMON_GEOMETRY_HPP
#define PHASTLANE_COMMON_GEOMETRY_HPP

#include <cstdlib>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace phastlane {

/** Integer grid coordinate. x grows eastward, y grows northward. */
struct Coord {
    int x = 0;
    int y = 0;

    bool operator==(const Coord &o) const = default;
};

/**
 * A width x height 2D mesh.
 *
 * Node ids are assigned row-major from the south-west corner:
 * id = y * width + x. The paper's network is an 8x8 mesh (64 nodes).
 */
class MeshTopology
{
  public:
    /**
     * @param width Nodes per row (> 0).
     * @param height Nodes per column (> 0).
     */
    MeshTopology(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    int nodeCount() const { return width_ * height_; }

    /** True when @p n is a valid node id. */
    bool valid(NodeId n) const { return n >= 0 && n < nodeCount(); }

    // The per-hop lookups below are defined inline: the simulator's
    // step() hot path calls them millions of times per second, and the
    // out-of-line versions' call overhead dominated the profile.

    /** Coordinate of node @p n. */
    Coord coordOf(NodeId n) const
    {
        PL_ASSERT(valid(n), "node %d out of range", n);
        return Coord{static_cast<int>(n) % width_,
                     static_cast<int>(n) / width_};
    }

    /** Node id at coordinate @p c (must be in range). */
    NodeId nodeAt(Coord c) const
    {
        PL_ASSERT(inside(c), "coord (%d,%d) out of range", c.x, c.y);
        return static_cast<NodeId>(c.y * width_ + c.x);
    }

    /** True when @p c lies inside the mesh. */
    bool inside(Coord c) const
    {
        return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
    }

    /**
     * Neighbor of @p n in direction @p dir, or kInvalidNode at the
     * mesh edge. @p dir must be a mesh direction, not Local.
     */
    NodeId neighbor(NodeId n, Port dir) const
    {
        Coord c = coordOf(n);
        switch (dir) {
          case Port::North: c.y += 1; break;
          case Port::South: c.y -= 1; break;
          case Port::East: c.x += 1; break;
          case Port::West: c.x -= 1; break;
          default:
            panic("neighbor() called with non-mesh port");
        }
        return inside(c) ? nodeAt(c) : kInvalidNode;
    }

    /** Manhattan distance in hops between two nodes. */
    int hopDistance(NodeId a, NodeId b) const
    {
        const Coord ca = coordOf(a);
        const Coord cb = coordOf(b);
        return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
    }

    /**
     * Dimension-order (X then Y) route from @p src to @p dst as the
     * sequence of output directions taken at each router, starting
     * with the direction out of @p src. Empty when src == dst.
     */
    std::vector<Port> xyRoute(NodeId src, NodeId dst) const;

    /**
     * The sequence of nodes visited on the XY route, excluding @p src
     * and including @p dst. Empty when src == dst.
     */
    std::vector<NodeId> xyPath(NodeId src, NodeId dst) const;

    /**
     * First output direction on the XY route from @p at to @p dst;
     * Port::Local when already there.
     */
    Port xyFirstHop(NodeId at, NodeId dst) const
    {
        const Coord a = coordOf(at);
        const Coord d = coordOf(dst);
        if (a.x < d.x)
            return Port::East;
        if (a.x > d.x)
            return Port::West;
        if (a.y < d.y)
            return Port::North;
        if (a.y > d.y)
            return Port::South;
        return Port::Local;
    }

  private:
    int width_;
    int height_;
};

/**
 * A rectangular partition of a mesh into cols x rows shards for the
 * topology-parallel step() (DESIGN.md §12).
 *
 * Shard (sx, sy) covers columns [sx*W/cols, (sx+1)*W/cols) and rows
 * [sy*H/rows, (sy+1)*H/rows): blocks differ in size by at most one
 * row/column, every router belongs to exactly one shard, and the
 * partition is a pure function of (W, H, cols, rows) — identical on
 * every platform and thread count.
 *
 * Shard ids are row-major over the shard grid (sy * cols + sx).
 * Within a shard, local ids are row-major over its rectangle; because
 * both numberings are y-major/x-minor, ascending local id order equals
 * ascending global id order restricted to the shard — the property the
 * sharded engine's deterministic effect merge relies on.
 */
class ShardGrid
{
  public:
    /** One shard's rectangle (inclusive origin, exclusive extent). */
    struct Rect {
        int x0 = 0;
        int y0 = 0;
        int width = 0;
        int height = 0;

        int nodeCount() const { return width * height; }
        bool contains(Coord c) const
        {
            return c.x >= x0 && c.x < x0 + width && c.y >= y0 &&
                   c.y < y0 + height;
        }
    };

    /** cols/rows are clamped to [1, mesh width/height]. */
    ShardGrid(const MeshTopology &mesh, int cols, int rows);

    int cols() const { return cols_; }
    int rows() const { return rows_; }
    int count() const { return cols_ * rows_; }

    const Rect &rect(int shard) const
    {
        PL_ASSERT(shard >= 0 && shard < count(),
                  "shard %d out of range", shard);
        return rects_[static_cast<size_t>(shard)];
    }

    /** Shard owning node @p n. */
    int shardOf(NodeId n) const
    {
        return shardOfNode_[static_cast<size_t>(n)];
    }

    /** Local (within-rect, row-major) id of node @p n in its shard. */
    int localId(NodeId n) const
    {
        return localIdOfNode_[static_cast<size_t>(n)];
    }

  private:
    int cols_;
    int rows_;
    std::vector<Rect> rects_;
    std::vector<int32_t> shardOfNode_;
    std::vector<int32_t> localIdOfNode_;
};

} // namespace phastlane

#endif // PHASTLANE_COMMON_GEOMETRY_HPP
