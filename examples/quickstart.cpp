/**
 * @file
 * Quickstart: build a Phastlane network, send a unicast and a
 * broadcast, watch them arrive, and print the activity counters and a
 * power estimate.
 *
 *   ./examples/quickstart [--hops 4] [--buffers 10]
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/log.hpp"
#include "core/network.hpp"
#include "power/optical_power.hpp"

using namespace phastlane;

int
main(int argc, char **argv)
{
    const Config args = Config::fromArgs(argc, argv);

    // 1. Configure the network (defaults follow the paper's Table 1).
    core::PhastlaneParams params;
    params.maxHopsPerCycle =
        static_cast<int>(args.getInt("hops", 4));
    params.routerBufferEntries =
        static_cast<int>(args.getInt("buffers", 10));
    core::PhastlaneNetwork net(params);
    std::printf("Phastlane %dx%d mesh, %d hops/cycle, %d-entry "
                "buffers\n",
                net.mesh().width(), net.mesh().height(),
                params.maxHopsPerCycle, params.routerBufferEntries);

    // 2. A corner-to-corner unicast: 14 hops, pipelined through
    //    interim nodes.
    Packet pkt;
    pkt.id = 1;
    pkt.src = 0;
    pkt.dst = 63;
    pkt.createdAt = net.now();
    if (!net.inject(pkt))
        fatal("NIC rejected the packet");
    while (net.inFlight() > 0) {
        net.step();
        for (const auto &d : net.deliveries()) {
            std::printf("cycle %llu: packet %llu delivered at node "
                        "%d (latency %llu cycles)\n",
                        static_cast<unsigned long long>(d.at),
                        static_cast<unsigned long long>(d.packet.id),
                        d.node,
                        static_cast<unsigned long long>(
                            d.at - d.packet.createdAt));
        }
    }

    // 3. A snoopy broadcast from the center: up to 16 multicast
    //    branches cover all 63 other nodes.
    Packet bcast;
    bcast.id = 2;
    bcast.src = 27;
    bcast.broadcast = true;
    bcast.createdAt = net.now();
    if (!net.inject(bcast))
        fatal("NIC rejected the broadcast");
    uint64_t copies = 0;
    Cycle last = 0;
    while (net.inFlight() > 0) {
        net.step();
        copies += net.deliveries().size();
        if (!net.deliveries().empty())
            last = net.now() - 1;
    }
    std::printf("broadcast from node 27: %llu copies delivered, "
                "last at cycle %llu\n",
                static_cast<unsigned long long>(copies),
                static_cast<unsigned long long>(last));

    // 4. Counters and power.
    const auto &pl = net.phastlaneCounters();
    std::printf("\nlaunches=%llu interim_accepts=%llu "
                "blocked_buffered=%llu drops=%llu\n",
                static_cast<unsigned long long>(pl.launches),
                static_cast<unsigned long long>(pl.interimAccepts),
                static_cast<unsigned long long>(pl.blockedBuffered),
                static_cast<unsigned long long>(pl.drops));

    power::OpticalPowerModel power_model(params);
    const auto p = power_model.report(net.events(), net.now());
    std::printf("average network power over the run: %.2f W "
                "(laser %.2f, modulator %.2f, static %.2f)\n",
                p.totalW, p.laserW, p.modulatorW,
                p.staticW + p.bufferLeakageW);
    return 0;
}
